//! AIR Top-K: Adaptive and Iteration-fused Radix top-K (§3 of the
//! paper, Algorithm 1).
//!
//! The algorithm processes keys most-significant-digit first, one
//! radix pass per kernel. Three ideas distinguish it from classic
//! RadixSelect:
//!
//! 1. **Iteration fusion (§3.1).** Each `iteration_fused_kernel` does
//!    the *previous* pass's filtering and the *current* pass's
//!    histogram in one data sweep, and the last thread block to finish
//!    computes the prefix sum and target digit on-device. The host
//!    only launches `⌈32/b⌉` fused kernels plus one `last_filter_kernel`
//!    — no intermediate device→host copies, no synchronisation
//!    (compare Fig. 2's 16 launches to Fig. 3's 4).
//! 2. **Adaptive buffering (§3.2).** Writing surviving candidates to a
//!    compact buffer pays `4C` memory accesses to save `N` reads next
//!    pass; under radix-adversarial data `C ≈ N` and buffering is pure
//!    waste. The last block therefore sets a per-pass flag: store
//!    candidates only when `C·α < N`, otherwise the next pass re-reads
//!    the original input and re-applies the accumulated digit filter.
//!    This also caps the candidate buffer at `N/α` elements.
//! 3. **Early stopping (§3.3).** When the updated `K` equals the
//!    candidate count, every remaining candidate is a result; the next
//!    kernel just copies them out and all later kernels return
//!    immediately.
//!
//! Batched problems are solved by one set of launches: blocks are
//! striped `batch × blocks_per_problem`, with per-problem control
//! blocks, histograms and "last block" counters — this is why AIR
//! Top-K's batch-100 advantage over loop-over-queries baselines is so
//! large (Table 2).

use crate::error::TopKError;
use crate::keys::{digit_of, digit_width_of, num_passes_of, prefix_of, RadixKey};
use crate::obs;
use crate::scratch::ScratchGuard;
use crate::traits::{check_args, Category, TopKAlgorithm, TopKOutput, TypedOutput};
use gpu_sim::{Backend, BackendExt, DeviceBuffer, Footprint, KernelContract, LaunchConfig};
use std::sync::atomic::Ordering::Relaxed;

/// Tuning knobs for [`AirTopK`]. Defaults follow the paper: 11-bit
/// digits (3 passes over 32-bit keys), α = 128 (§5: "determined
/// empirically"), adaptive buffering and early stopping enabled.
#[derive(Debug, Clone)]
pub struct AirConfig {
    /// Digit width in bits (8 or 11 are the sensible choices; §3.1
    /// explains why on-device prefix sums make 11 affordable).
    pub bits_per_pass: u32,
    /// Buffering threshold α: candidates are buffered only when
    /// `C·α < N`. Must be ≥ 4 (the information-theoretic lower bound
    /// derived in §3.2) for the buffering to ever pay off.
    pub alpha: usize,
    /// Enable the adaptive strategy (§3.2). When false, candidates are
    /// always buffered, like classic radix top-K — the ablation of
    /// Fig. 9.
    pub adaptive: bool,
    /// Enable early stopping (§3.3) — the ablation of Fig. 10.
    pub early_stop: bool,
    /// Threads per block.
    pub block_dim: usize,
    /// Input elements each thread processes per pass.
    pub items_per_thread: usize,
}

impl Default for AirConfig {
    fn default() -> Self {
        AirConfig {
            bits_per_pass: 11,
            alpha: 128,
            adaptive: true,
            early_stop: true,
            block_dim: 512,
            items_per_thread: 16,
        }
    }
}

// Control-block slot offsets (per problem).
const K_REM: usize = 0; // remaining K
const SRC_BUFFERED: usize = 1; // current pass reads the candidate buffer
const SRC_COUNT: usize = 2; // element count in that buffer
const STORE_CUR: usize = 3; // current pass writes candidates
const EARLY: usize = 4; // current pass outputs all candidates (early stop)
const FINISHED: usize = 5; // all results emitted; later kernels no-op
const OUT_CURSOR: usize = 6; // write position in the output lists
const TIE_CURSOR: usize = 7; // rank counter for kth-value ties
const CTRL_FIXED: usize = 8;
// Then per pass: TARGET[p], BUF_CURSOR[p] (the accumulated kth
// prefixes live in a separate u64 buffer so 64-bit keys fit).

/// Problems at or below this size take the one-block fast path: the
/// whole multi-pass selection fused into a single kernel, one thread
/// block per problem (RAFT's `radix_topk_one_block_kernel`). A block
/// can keep all candidates in shared memory (8 bytes each) and
/// synchronise between passes internally, so the N-element input is
/// read exactly once and only one launch is paid.
pub const ONE_BLOCK_THRESHOLD: usize = 8192;

/// How a batched kernel reads its per-problem inputs: either a slice
/// of separate row buffers (the convenience API) or one contiguous
/// row-major matrix (RAFT's `matrix::select_k` shape, zero copies).
/// Shared with the other batched radix kernels in this crate
/// ([`crate::radik`], [`crate::rowwise`]).
#[derive(Clone, Copy)]
pub(crate) enum Rows<'a, T: RadixKey> {
    Slices(&'a [DeviceBuffer<T>]),
    Matrix(&'a crate::matrix::DeviceMatrix<T>),
}

impl<'a, T: RadixKey> Rows<'a, T> {
    #[inline(always)]
    pub(crate) fn ld(&self, ctx: &mut gpu_sim::BlockCtx<'_>, prob: usize, i: usize) -> T {
        match self {
            Rows::Slices(v) => ctx.ld(&v[prob], i),
            Rows::Matrix(m) => ctx.ld(m.buffer(), prob * m.cols() + i),
        }
    }

    pub(crate) fn batch(&self) -> usize {
        match self {
            Rows::Slices(v) => v.len(),
            Rows::Matrix(m) => m.rows(),
        }
    }

    pub(crate) fn n(&self) -> usize {
        match self {
            Rows::Slices(v) => v.first().map_or(0, |b| b.len()),
            Rows::Matrix(m) => m.cols(),
        }
    }

    /// Declare every backing buffer of this row set as a read in `c`.
    /// Which row a block loads is launch-geometry-dependent, so the
    /// honest static footprint is `all`.
    pub(crate) fn declare_reads(&self, c: KernelContract) -> KernelContract {
        match self {
            Rows::Slices(v) => v.iter().fold(c, |c, b| c.reads(b, Footprint::all())),
            Rows::Matrix(m) => c.reads(m.buffer(), Footprint::all()),
        }
    }
}

/// AIR Top-K (Adaptive and Iteration-fused Radix top-K), §3.
///
/// ```
/// use gpu_sim::{Gpu, DeviceSpec};
/// use topk_core::{AirTopK, TopKAlgorithm, verify_topk};
///
/// let mut gpu = Gpu::new(DeviceSpec::a100());
/// let data: Vec<f32> = (0..50_000).map(|i| ((i * 37) % 9973) as f32).collect();
/// let input = gpu.htod("scores", &data);
///
/// let out = AirTopK::default().select(&mut gpu, &input, 25);
/// verify_topk(&data, 25, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
/// // Four launches (3 fused passes + last filter), zero PCIe traffic.
/// assert_eq!(gpu.timeline().kernel_count() > 0, true);
/// ```
#[derive(Debug, Clone)]
pub struct AirTopK {
    cfg: AirConfig,
}

impl Default for AirTopK {
    fn default() -> Self {
        AirTopK::new(AirConfig::default())
    }
}

impl AirTopK {
    /// Create with explicit configuration.
    pub fn new(cfg: AirConfig) -> Self {
        assert!(
            (1..=16).contains(&cfg.bits_per_pass),
            "bits_per_pass must be in 1..=16"
        );
        assert!(cfg.alpha >= 4, "alpha below its lower bound of 4 (§3.2)");
        AirTopK { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AirConfig {
        &self.cfg
    }

    /// Solve `inputs.len()` same-sized problems with one set of fused
    /// launches. All problems share N and K.
    pub fn run_batch(
        &self,
        gpu: &mut dyn Backend,
        inputs: &[DeviceBuffer<f32>],
        k: usize,
    ) -> Result<Vec<TopKOutput>, TopKError> {
        Ok(self
            .run_batch_typed(gpu, inputs, k)?
            .into_iter()
            .map(|(values, indices)| TopKOutput::new(values, indices))
            .collect())
    }

    /// Generic-key batched selection: any [`RadixKey`] type (`f32`,
    /// `u32`, `i32`) works — the algorithm operates on order-preserving
    /// bits throughout, like RAFT's dtype-templated `select_k`.
    /// Returns `(values, indices)` buffers per problem.
    pub fn run_batch_typed<T: RadixKey>(
        &self,
        gpu: &mut dyn Backend,
        inputs: &[DeviceBuffer<T>],
        k: usize,
    ) -> Result<Vec<TypedOutput<T>>, TopKError> {
        let Some(first) = inputs.first() else {
            return Err(TopKError::UnsupportedShape {
                algorithm: self.name(),
                detail: "empty batch".into(),
            });
        };
        let n = first.len();
        if let Some(bad) = inputs.iter().find(|b| b.len() != n) {
            return Err(TopKError::UnsupportedShape {
                algorithm: self.name(),
                detail: format!(
                    "batched inputs must share one length, got {n} and {}",
                    bad.len()
                ),
            });
        }
        let batch = inputs.len();
        let (out_val, out_idx) = self.run_rows(gpu, Rows::Slices(inputs), k)?;
        // Split the packed outputs into per-problem buffers (zero-cost
        // view in real CUDA; a host-side reshape here).
        let width = out_val.len() / batch;
        Ok((0..batch)
            .map(|p| {
                (
                    slice_buffer(&out_val, p * width, width, "air_values"),
                    slice_buffer(&out_idx, p * width, width, "air_indices"),
                )
            })
            .collect())
    }

    /// Matrix-shaped batched selection (RAFT `matrix::select_k`
    /// parity): input is one contiguous `rows × cols` device matrix;
    /// outputs come back as packed `rows × k` matrices with no per-row
    /// reshaping.
    pub fn run_matrix_typed<T: RadixKey>(
        &self,
        gpu: &mut dyn Backend,
        input: &crate::matrix::DeviceMatrix<T>,
        k: usize,
    ) -> Result<
        (
            crate::matrix::DeviceMatrix<T>,
            crate::matrix::DeviceMatrix<u32>,
        ),
        TopKError,
    > {
        let rows = input.rows();
        if rows < 1 {
            return Err(TopKError::UnsupportedShape {
                algorithm: self.name(),
                detail: "empty matrix".into(),
            });
        }
        let (out_val, out_idx) = self.run_rows(gpu, Rows::Matrix(input), k)?;
        let width = out_val.len() / rows;
        Ok((
            crate::matrix::DeviceMatrix::from_buffer(out_val, rows, width),
            crate::matrix::DeviceMatrix::from_buffer(out_idx, rows, width),
        ))
    }

    /// The K-th smallest value itself — the selection *threshold* —
    /// without materialising the index list on the host. Several of
    /// the paper's motivating applications only need this: Deep
    /// Gradient Compression (§1) keeps every gradient whose magnitude
    /// clears the top-0.1% threshold. Runs the normal selection, then
    /// a tiny on-device max-reduction over the K winners (in the
    /// ordered-bit domain) and a single-word copy back.
    pub fn kth_value_typed<T>(
        &self,
        gpu: &mut dyn Backend,
        input: &DeviceBuffer<T>,
        k: usize,
    ) -> Result<T, TopKError>
    where
        T: RadixKey,
        T::Ordered: gpu_sim::DeviceScalar,
    {
        let (vals, idx) = self.run_rows(gpu, Rows::Slices(std::slice::from_ref(input)), k)?;
        let mut ws = ScratchGuard::new();
        ws.adopt(&vals);
        ws.adopt(&idx);
        let acc = match ws.alloc::<T::Ordered>(gpu, "kth_acc", 1) {
            Ok(b) => b,
            Err(e) => {
                ws.release(gpu);
                return Err(e);
            }
        };
        acc.set(0, vals.get(0).to_ordered()); // seed with one winner
        let launched = {
            let vals = vals.clone();
            let acc = acc.clone();
            let width = vals.len();
            let contract = KernelContract::new("kth_value_reduce")
                .reads(&vals, Footprint::tiles(256 * 4))
                .atomics(&acc, Footprint::elem(0));
            gpu.try_launch_checked(
                &contract,
                LaunchConfig::for_elements(width, 256, 4, usize::MAX),
                move |ctx| {
                    let chunk = 256 * 4;
                    let start = ctx.block_idx * chunk;
                    let end = (start + chunk).min(width);
                    if start >= end {
                        return;
                    }
                    let mut m = ctx.ld(&vals, start).to_ordered();
                    for i in start + 1..end {
                        let o = ctx.ld(&vals, i).to_ordered();
                        m = m.max(o);
                        ctx.ops(1);
                    }
                    // Unsigned raw max on ordered bits == value max.
                    ctx.atomic_max_raw(&acc, 0, m);
                },
            )
        };
        if let Err(e) = launched {
            ws.release(gpu);
            return Err(e.into());
        }
        let kth = T::from_ordered(gpu.dtoh(&acc)[0]);
        ws.release(gpu);
        Ok(kth)
    }

    /// [`AirTopK::kth_value_typed`] for `f32`.
    pub fn kth_value(
        &self,
        gpu: &mut dyn Backend,
        input: &DeviceBuffer<f32>,
        k: usize,
    ) -> Result<f32, TopKError> {
        self.kth_value_typed(gpu, input, k)
    }

    /// The shared implementation: outputs are packed row-major
    /// `batch × k` buffers.
    fn run_rows<T: RadixKey>(
        &self,
        gpu: &mut dyn Backend,
        inputs: Rows<'_, T>,
        k: usize,
    ) -> Result<(DeviceBuffer<T>, DeviceBuffer<u32>), TopKError> {
        let n = inputs.n();
        check_args(self, n, k)?;

        if k == n {
            // Trivial selection (§3.3's observation applied at the API
            // boundary): every element is a result, so a single copy
            // kernel suffices. The host knows K and N, no device work
            // is needed to decide this.
            return Self::run_batch_copy_all(gpu, inputs);
        }
        if n <= ONE_BLOCK_THRESHOLD {
            return self.run_batch_one_block(gpu, inputs, k);
        }

        // Workspace is tracked by guards so every `?` below releases
        // the simulated allocations instead of leaking them into the
        // device's `mem_allocated` accounting.
        let mut ws = ScratchGuard::new();
        let mut outs = ScratchGuard::new();
        let r = self.run_rows_multi_pass(gpu, &mut ws, &mut outs, inputs, k);
        ws.release(gpu);
        if r.is_err() {
            outs.release(gpu);
        }
        r
    }

    /// The general multi-pass path behind [`AirTopK::run_rows`]:
    /// allocations go through the caller's guards, so any error exit
    /// stays leak-free.
    fn run_rows_multi_pass<T: RadixKey>(
        &self,
        gpu: &mut dyn Backend,
        ws: &mut ScratchGuard,
        outs: &mut ScratchGuard,
        inputs: Rows<'_, T>,
        k: usize,
    ) -> Result<(DeviceBuffer<T>, DeviceBuffer<u32>), TopKError> {
        let n = inputs.n();
        let b = self.cfg.bits_per_pass;
        let passes = num_passes_of::<T::Ordered>(b) as usize;
        let radix = 1usize << b;
        let batch = inputs.batch();
        let ctrl_stride = CTRL_FIXED + 2 * passes;
        let target_off = CTRL_FIXED;
        let bufcur_off = CTRL_FIXED + passes;

        let chunk = self.cfg.block_dim * self.cfg.items_per_thread;
        let blocks_per_problem = n.div_ceil(chunk).max(1);
        let grid = batch * blocks_per_problem;
        let launch = LaunchConfig::grid_1d(grid, self.cfg.block_dim);

        // Candidate-buffer capacity per problem: N/α when adaptive
        // (§3.2's memory-footprint guarantee), N otherwise.
        let cap = if self.cfg.adaptive {
            (n / self.cfg.alpha).max(1)
        } else {
            n
        };

        // Workspace.
        let ctrl = ws.alloc::<u32>(gpu, "air_ctrl", batch * ctrl_stride)?;
        // Accumulated kth-prefix per pass; u64 so 64-bit keys fit.
        let prefixes = ws.alloc::<u64>(gpu, "air_prefixes", batch * passes)?;
        let hist = ws.alloc::<u32>(gpu, "air_hist", batch * passes * radix)?;
        let done = ws.alloc::<u32>(gpu, "air_done", batch * passes)?;
        let buf_val = [
            ws.alloc::<T>(gpu, "air_buf_val0", batch * cap)?,
            ws.alloc::<T>(gpu, "air_buf_val1", batch * cap)?,
        ];
        let buf_idx = [
            ws.alloc::<u32>(gpu, "air_buf_idx0", batch * cap)?,
            ws.alloc::<u32>(gpu, "air_buf_idx1", batch * cap)?,
        ];
        let out_val = outs.alloc::<T>(gpu, "air_out_val", batch * k)?;
        let out_idx = outs.alloc::<u32>(gpu, "air_out_idx", batch * k)?;

        // No init kernel: K and N are launch constants baked into the
        // kernels (as RAFT does). Control words, histograms, and done
        // counters start from an explicit host memset (cudaMemsetAsync
        // territory — allocation contents are garbage on a real
        // device). The remaining-K control slot only becomes live once
        // pass 0's last block writes it.
        ctrl.fill(0);
        hist.fill(0);
        done.fill(0);
        let adaptive = self.cfg.adaptive;
        let early_stop = self.cfg.early_stop;
        let alpha = self.cfg.alpha;

        // ---- the fused passes --------------------------------------
        for pass in 0..passes {
            let kernel = |ctx: &mut gpu_sim::BlockCtx| {
                let prob = ctx.block_idx / blocks_per_problem;
                let blk = ctx.block_idx % blocks_per_problem;
                let cb = prob * ctrl_stride;

                if ctx.ld(&ctrl, cb + FINISHED) != 0 {
                    return;
                }

                let early = pass > 0 && ctx.ld(&ctrl, cb + EARLY) != 0;
                let src_is_buf = pass > 0 && ctx.ld(&ctrl, cb + SRC_BUFFERED) != 0;
                let n_src = if src_is_buf {
                    ctx.ld(&ctrl, cb + SRC_COUNT) as usize
                } else {
                    n
                };
                let store = !early && pass > 0 && ctx.ld(&ctrl, cb + STORE_CUR) != 0;
                let read_sel = (pass + 1) % 2; // buffer written by pass-1
                let write_sel = pass % 2;

                // Previous pass's target digit and the accumulated
                // prefix through pass-2 (for re-filtering from L).
                let (target_prev, prefix_prev2, wid_prev2) = if pass > 0 {
                    let t = ctx.ld(&ctrl, cb + target_off + pass - 1);
                    if pass >= 2 {
                        let w: u32 = (0..pass as u32 - 1)
                            .map(|q| digit_width_of::<T::Ordered>(q, b))
                            .sum();
                        (t, ctx.ld(&prefixes, prob * passes + pass - 2), w)
                    } else {
                        (t, 0, 0)
                    }
                } else {
                    (0, 0, 0)
                };

                let start = blk * chunk;
                let end = (start + chunk).min(n_src);

                let mut local_hist: Vec<u32> = if pass == 0 || !early {
                    ctx.shared_alloc::<u32>(radix)
                } else {
                    Vec::new()
                };

                for i in start..end {
                    let (v, idx) = if src_is_buf {
                        (
                            ctx.ld(&buf_val[read_sel], prob * cap + i),
                            ctx.ld(&buf_idx[read_sel], prob * cap + i),
                        )
                    } else {
                        (inputs.ld(ctx, prob, i), i as u32)
                    };
                    let bits = v.to_ordered();
                    ctx.ops(4); // load index math + ordered-bit transform

                    if pass == 0 {
                        local_hist[digit_of::<T::Ordered>(bits, 0, b) as usize] += 1;
                        ctx.ops(4); // digit extract + shared-memory histogram
                        continue;
                    }

                    // Skip elements that diverged from the kth prefix
                    // in an earlier pass (they were output or discarded
                    // there already).
                    if !src_is_buf
                        && pass >= 2
                        && prefix_of::<T::Ordered>(bits, wid_prev2) != prefix_prev2
                    {
                        ctx.ops(1);
                        continue;
                    }

                    let d_prev = digit_of::<T::Ordered>(bits, pass as u32 - 1, b);
                    ctx.ops(8); // digit extract + three-way filter branch logic
                    if early {
                        // Early-stop copy-out: committed results
                        // (d < target) and every remaining candidate
                        // (d == target) are all results.
                        if d_prev <= target_prev {
                            let pos = ctx.atomic_add(&ctrl, cb + OUT_CURSOR, 1) as usize;
                            debug_assert!(pos < k);
                            ctx.st_scatter(&out_val, prob * k + pos, v);
                            ctx.st_scatter(&out_idx, prob * k + pos, idx);
                        }
                    } else if d_prev < target_prev {
                        // Guaranteed result (Algorithm 1 line 22).
                        let pos = ctx.atomic_add(&ctrl, cb + OUT_CURSOR, 1) as usize;
                        debug_assert!(pos < k);
                        ctx.st_scatter(&out_val, prob * k + pos, v);
                        ctx.st_scatter(&out_idx, prob * k + pos, idx);
                    } else if d_prev == target_prev {
                        // Candidate: optionally buffer (line 17-18),
                        // histogram this pass's digit (lines 19-20).
                        if store {
                            let pos = ctx.atomic_add(&ctrl, cb + bufcur_off + pass, 1) as usize;
                            debug_assert!(pos < cap);
                            ctx.st_scatter(&buf_val[write_sel], prob * cap + pos, v);
                            ctx.st_scatter(&buf_idx[write_sel], prob * cap + pos, idx);
                        }
                        local_hist[digit_of::<T::Ordered>(bits, pass as u32, b) as usize] += 1;
                        ctx.ops(2);
                    }
                }

                // Flush the block-local histogram to the global one.
                if !local_hist.is_empty() {
                    let hbase = (prob * passes + pass) * radix;
                    for (d, &c) in local_hist.iter().enumerate() {
                        if c != 0 {
                            ctx.atomic_add(&hist, hbase + d, c);
                        }
                    }
                    ctx.ops(radix as u64);
                }

                // Last finishing block of this problem computes the
                // prefix sum and the target digit (Algorithm 1 lines
                // 23-28) — entirely on-device.
                let prev = ctx.atomic_add_sync(&done, prob * passes + pass, 1);
                if prev + 1 == blocks_per_problem as u32 {
                    // Observability hook: one event per (problem, pass)
                    // — the per-iteration signal the §3.2/§3.3 ablation
                    // figures are built from, now counted at runtime.
                    obs::counters().air_passes.fetch_add(1, Relaxed);
                    if early {
                        ctx.st(&ctrl, cb + FINISHED, 1);
                        ctx.st(&ctrl, cb + EARLY, 0);
                        return;
                    }
                    let k_rem = if pass == 0 {
                        k as u32 // launch constant; ctrl not yet live
                    } else {
                        ctx.ld(&ctrl, cb + K_REM)
                    };
                    let hbase = (prob * passes + pass) * radix;
                    let width = digit_width_of::<T::Ordered>(pass as u32, b);
                    let r_pass = 1usize << width;
                    let mut acc: u32 = 0;
                    let mut target: u32 = 0;
                    let mut psum_before: u32 = 0;
                    let mut e_next: u32 = 0;
                    for d in 0..r_pass {
                        let h = ctx.ld(&hist, hbase + d);
                        if acc + h >= k_rem {
                            target = d as u32;
                            psum_before = acc;
                            e_next = h;
                            break;
                        }
                        acc += h;
                    }
                    ctx.ops(2 * r_pass as u64);

                    let k_next = k_rem - psum_before;
                    ctx.st(&ctrl, cb + target_off + pass, target);
                    let pfx_prev = if pass > 0 {
                        ctx.ld(&prefixes, prob * passes + pass - 1)
                    } else {
                        0
                    };
                    ctx.st(
                        &prefixes,
                        prob * passes + pass,
                        (pfx_prev << width) | target as u64,
                    );
                    ctx.st(&ctrl, cb + K_REM, k_next);

                    // Flags for the next kernel (Algorithm 1 line 7 and
                    // the §3.2 storing rule).
                    ctx.st(&ctrl, cb + SRC_BUFFERED, store as u32);
                    if store {
                        let cnt = ctx.ld(&ctrl, cb + bufcur_off + pass);
                        ctx.st(&ctrl, cb + SRC_COUNT, cnt);
                    }
                    let is_early = early_stop && k_next == e_next;
                    let store_next =
                        !is_early && (!adaptive || (e_next as usize).saturating_mul(alpha) < n);
                    ctx.st(&ctrl, cb + STORE_CUR, store_next as u32);
                    ctx.st(&ctrl, cb + EARLY, is_early as u32);
                    ctx.ops(8);
                    if is_early {
                        obs::counters().air_early_stops.fetch_add(1, Relaxed);
                    } else if store_next {
                        obs::counters().air_buffer_writes.fetch_add(1, Relaxed);
                    } else if adaptive {
                        obs::counters().air_adaptive_skips.fetch_add(1, Relaxed);
                    }
                }
            };
            let (read_sel, write_sel) = ((pass + 1) % 2, pass % 2);
            let contract = inputs
                .declare_reads(KernelContract::new("iteration_fused_kernel"))
                .coordinates(&ctrl, Footprint::per_group(blocks_per_problem, ctrl_stride))
                .coordinates(&prefixes, Footprint::per_group(blocks_per_problem, passes))
                .coordinates(
                    &hist,
                    Footprint::group_slice(blocks_per_problem, pass * radix, passes * radix, radix),
                )
                .atomics(
                    &done,
                    Footprint::group_slice(blocks_per_problem, pass, passes, 1),
                )
                .reads(
                    &buf_val[read_sel],
                    Footprint::per_group(blocks_per_problem, cap),
                )
                .reads(
                    &buf_idx[read_sel],
                    Footprint::per_group(blocks_per_problem, cap),
                )
                .writes_shared(
                    &buf_val[write_sel],
                    Footprint::per_group(blocks_per_problem, cap),
                )
                .writes_shared(
                    &buf_idx[write_sel],
                    Footprint::per_group(blocks_per_problem, cap),
                )
                .writes_shared(&out_val, Footprint::per_group(blocks_per_problem, k))
                .writes_shared(&out_idx, Footprint::per_group(blocks_per_problem, k))
                .uses_shared_mem(radix * 4);
            gpu.try_launch_checked(&contract, launch, kernel)?;
        }

        // ---- the last filter (§2.3's final "Filtering" step) --------
        let last = passes - 1;
        let contract = inputs
            .declare_reads(KernelContract::new("last_filter_kernel"))
            .coordinates(&ctrl, Footprint::per_group(blocks_per_problem, ctrl_stride))
            .reads(&prefixes, Footprint::per_group(blocks_per_problem, passes))
            .reads(
                &buf_val[last % 2],
                Footprint::per_group(blocks_per_problem, cap),
            )
            .reads(
                &buf_idx[last % 2],
                Footprint::per_group(blocks_per_problem, cap),
            )
            .writes_shared(&out_val, Footprint::per_group(blocks_per_problem, k))
            .writes_shared(&out_idx, Footprint::per_group(blocks_per_problem, k));
        gpu.try_launch_checked(&contract, launch, |ctx| {
            let prob = ctx.block_idx / blocks_per_problem;
            let blk = ctx.block_idx % blocks_per_problem;
            let cb = prob * ctrl_stride;

            if ctx.ld(&ctrl, cb + FINISHED) != 0 {
                return;
            }

            let src_is_buf = ctx.ld(&ctrl, cb + SRC_BUFFERED) != 0;
            let n_src = if src_is_buf {
                ctx.ld(&ctrl, cb + SRC_COUNT) as usize
            } else {
                n
            };
            let read_sel = last % 2; // buffer written by the last fused pass
            let target = ctx.ld(&ctrl, cb + target_off + last);
            let k_rem = ctx.ld(&ctrl, cb + K_REM);
            let (prefix_prev2, wid_prev2) = if last >= 1 {
                let w: u32 = (0..last as u32)
                    .map(|q| digit_width_of::<T::Ordered>(q, b))
                    .sum();
                (ctx.ld(&prefixes, prob * passes + last - 1), w)
            } else {
                (0, 0)
            };

            let start = blk * chunk;
            let end = (start + chunk).min(n_src);
            for i in start..end {
                let (v, idx) = if src_is_buf {
                    (
                        ctx.ld(&buf_val[read_sel], prob * cap + i),
                        ctx.ld(&buf_idx[read_sel], prob * cap + i),
                    )
                } else {
                    (inputs.ld(ctx, prob, i), i as u32)
                };
                let bits = v.to_ordered();
                ctx.ops(3);
                if !src_is_buf
                    && last >= 1
                    && prefix_of::<T::Ordered>(bits, wid_prev2) != prefix_prev2
                {
                    ctx.ops(1);
                    continue;
                }
                let d = digit_of::<T::Ordered>(bits, last as u32, b);
                ctx.ops(2);
                if d < target {
                    let pos = ctx.atomic_add(&ctrl, cb + OUT_CURSOR, 1) as usize;
                    debug_assert!(pos < k);
                    ctx.st_scatter(&out_val, prob * k + pos, v);
                    ctx.st_scatter(&out_idx, prob * k + pos, idx);
                } else if d == target {
                    // Ties on the full key: admit the first k_rem by
                    // rank, mirroring RAFT's last_filter.
                    let rank = ctx.atomic_add(&ctrl, cb + TIE_CURSOR, 1);
                    if rank < k_rem {
                        let pos = ctx.atomic_add(&ctrl, cb + OUT_CURSOR, 1) as usize;
                        debug_assert!(pos < k);
                        ctx.st_scatter(&out_val, prob * k + pos, v);
                        ctx.st_scatter(&out_idx, prob * k + pos, idx);
                    }
                }
            }
        })?;

        // Workspace accounting is released by the caller's guard;
        // output buffers live on.
        Ok((out_val, out_idx))
    }
}

impl AirTopK {
    /// K = N: copy everything out with identity indices, one coalesced
    /// kernel for the whole batch.
    fn run_batch_copy_all<T: RadixKey>(
        gpu: &mut dyn Backend,
        inputs: Rows<'_, T>,
    ) -> Result<(DeviceBuffer<T>, DeviceBuffer<u32>), TopKError> {
        let n = inputs.n();
        let batch = inputs.batch();
        let mut outs = ScratchGuard::new();
        let out_val = outs.alloc::<T>(gpu, "air_out_val", batch * n)?;
        let out_idx = match outs.alloc::<u32>(gpu, "air_out_idx", batch * n) {
            Ok(b) => b,
            Err(e) => {
                outs.release(gpu);
                return Err(e);
            }
        };
        let chunk = 256 * 16;
        let bpp = n.div_ceil(chunk).max(1);
        let (ov, oi) = (out_val.clone(), out_idx.clone());
        // A problem's bpp blocks cover its n-slot row with clamped
        // chunks — group-affine, block-coordinated within the row.
        let contract = inputs
            .declare_reads(KernelContract::new("trivial_copy_kernel"))
            .writes_shared(&ov, Footprint::per_group(bpp, n))
            .writes_shared(&oi, Footprint::per_group(bpp, n));
        let launched = gpu.try_launch_checked(
            &contract,
            LaunchConfig::grid_1d(batch * bpp, 256),
            move |ctx| {
                let prob = ctx.block_idx / bpp;
                let blk = ctx.block_idx % bpp;
                let start = blk * chunk;
                let end = (start + chunk).min(n);
                for i in start..end {
                    let v = inputs.ld(ctx, prob, i);
                    ctx.st(&ov, prob * n + i, v);
                    ctx.st(&oi, prob * n + i, i as u32);
                }
                ctx.ops((end - start) as u64);
            },
        );
        if let Err(e) = launched {
            outs.release(gpu);
            return Err(e.into());
        }
        Ok((out_val, out_idx))
    }

    /// The one-block fast path (see [`ONE_BLOCK_THRESHOLD`]): one
    /// thread block per problem runs every radix pass internally,
    /// keeping candidates in shared memory. One launch for the whole
    /// batch, input read once, no candidate buffers in device memory.
    fn run_batch_one_block<T: RadixKey>(
        &self,
        gpu: &mut dyn Backend,
        inputs: Rows<'_, T>,
        k: usize,
    ) -> Result<(DeviceBuffer<T>, DeviceBuffer<u32>), TopKError> {
        let n = inputs.n();
        let b = self.cfg.bits_per_pass;
        let passes = num_passes_of::<T::Ordered>(b) as usize;
        let radix = 1usize << b;
        let batch = inputs.batch();
        let early_stop = self.cfg.early_stop;

        let mut outs = ScratchGuard::new();
        let out_val = outs.alloc::<T>(gpu, "air_out_val", batch * k)?;
        let out_idx = match outs.alloc::<u32>(gpu, "air_out_idx", batch * k) {
            Ok(b) => b,
            Err(e) => {
                outs.release(gpu);
                return Err(e);
            }
        };
        let block_dim = 256;

        let ov = out_val.clone();
        let oi = out_idx.clone();
        let contract = inputs
            .declare_reads(KernelContract::new("radix_topk_one_block_kernel"))
            .writes(&ov, Footprint::per_block(k))
            .writes(&oi, Footprint::per_block(k))
            .uses_shared_mem(n * (std::mem::size_of::<T::Ordered>() + 4));
        let launched = gpu.try_launch_checked(
            &contract,
            LaunchConfig::grid_1d(batch, block_dim),
            move |ctx| {
                let prob = ctx.block_idx;
                obs::counters()
                    .air_one_block_selections
                    .fetch_add(1, Relaxed);

                // Shared memory: candidate (bits, idx) pairs + the
                // histogram. The block reads the input exactly once.
                let mut cand_bits = ctx.shared_alloc::<T::Ordered>(n);
                let mut cand_idx = ctx.shared_alloc::<u32>(n);
                for i in 0..n {
                    cand_bits[i] = inputs.ld(ctx, prob, i).to_ordered();
                    cand_idx[i] = i as u32;
                }
                ctx.ops(2 * n as u64);
                // Barrier between the cooperative load and the pass
                // loop (uniform: every block syncs exactly once — the
                // early-stop break is *after* this point).
                ctx.block_sync();

                let mut count = n;
                let mut k_rem = k as u32;
                let mut out = 0usize;
                let emit =
                    |ctx: &mut gpu_sim::BlockCtx, bits: T::Ordered, idx: u32, out: &mut usize| {
                        debug_assert!(*out < k);
                        ctx.st(&ov, prob * k + *out, T::from_ordered(bits));
                        ctx.st(&oi, prob * k + *out, idx);
                        *out += 1;
                    };

                'passes: for pass in 0..passes {
                    // Histogram of this pass's digit over the live
                    // candidates (a block-internal __syncthreads()
                    // separates these phases on real hardware).
                    let mut hist = vec![0u32; radix];
                    for i in 0..count {
                        hist[digit_of::<T::Ordered>(cand_bits[i], pass as u32, b) as usize] += 1;
                    }
                    ctx.ops(2 * count as u64);

                    // Prefix-scan for the target digit.
                    let width = digit_width_of::<T::Ordered>(pass as u32, b);
                    let mut acc = 0u32;
                    let mut target = 0u32;
                    for (d, &h) in hist.iter().enumerate().take(1 << width) {
                        if acc + h >= k_rem {
                            target = d as u32;
                            break;
                        }
                        acc += h;
                    }
                    ctx.ops(2 << width);
                    k_rem -= acc;

                    // Filter in place: emit sure results, keep ties
                    // with the target digit.
                    let mut kept = 0usize;
                    for i in 0..count {
                        let d = digit_of::<T::Ordered>(cand_bits[i], pass as u32, b);
                        if d < target {
                            emit(ctx, cand_bits[i], cand_idx[i], &mut out);
                        } else if d == target {
                            cand_bits[kept] = cand_bits[i];
                            cand_idx[kept] = cand_idx[i];
                            kept += 1;
                        }
                    }
                    ctx.ops(3 * count as u64);
                    count = kept;

                    obs::counters().air_passes.fetch_add(1, Relaxed);
                    if early_stop && k_rem as usize == count {
                        obs::counters().air_early_stops.fetch_add(1, Relaxed);
                        break 'passes;
                    }
                }

                // Remaining candidates are ties on the full key (or the
                // early-stop set): take the first k_rem.
                for i in 0..count.min(k_rem as usize) {
                    emit(ctx, cand_bits[i], cand_idx[i], &mut out);
                }
                debug_assert_eq!(out, k);
            },
        );
        if let Err(e) = launched {
            outs.release(gpu);
            return Err(e.into());
        }

        Ok((out_val, out_idx))
    }
}

/// Copy `len` elements at `offset` of `src` into a fresh buffer — the
/// host-side equivalent of taking a device-pointer offset view.
pub(crate) fn slice_buffer<T: gpu_sim::DeviceScalar>(
    src: &DeviceBuffer<T>,
    offset: usize,
    len: usize,
    label: &str,
) -> DeviceBuffer<T> {
    let out = DeviceBuffer::<T>::zeroed(label, len);
    for i in 0..len {
        out.set(i, src.get(offset + i));
    }
    out
}

impl TopKAlgorithm for AirTopK {
    fn name(&self) -> &'static str {
        "AIR Top-K"
    }

    fn category(&self) -> Category {
        Category::PartitionBased
    }

    fn try_select(
        &self,
        gpu: &mut dyn Backend,
        input: &DeviceBuffer<f32>,
        k: usize,
    ) -> Result<TopKOutput, TopKError> {
        let mut outs = self.run_batch(gpu, std::slice::from_ref(input), k)?;
        outs.pop().ok_or_else(|| TopKError::UnsupportedShape {
            algorithm: self.name(),
            detail: "batch of one produced no output".into(),
        })
    }

    fn try_select_batch(
        &self,
        gpu: &mut dyn Backend,
        inputs: &[DeviceBuffer<f32>],
        k: usize,
    ) -> Result<Vec<TopKOutput>, TopKError> {
        self.run_batch(gpu, inputs, k)
    }
}

#[cfg(test)]
#[path = "air_tests.rs"]
mod tests;
