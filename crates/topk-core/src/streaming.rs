//! On-the-fly top-K: the WarpSelect family as a *device function*.
//!
//! §2.2 and §4 highlight a capability unique to the WarpSelect family:
//! "it can serve as a device function within other kernels, and it can
//! process data on-the-fly because it maintains top-K results for all
//! seen elements". Faiss uses this to fuse distance computation with
//! selection — candidate distances are consumed the moment they are
//! produced and never written to device memory.
//!
//! [`WarpSelector`] is that device function: construct one per warp
//! inside your own kernel, [`push`](WarpSelector::push) 32-lane groups
//! of (value, payload) as you produce them, and
//! [`finish`](WarpSelector::finish) to obtain the K smallest seen. It
//! uses GridSelect's shared queue with parallel two-step insertion
//! (§4, Fig. 5) by default.
//!
//! The fused pattern saves the entire N-element store + reload that a
//! materialise-then-select pipeline pays — `examples/fused_ann.rs` and
//! the tests below demonstrate the traffic difference on the §5.5 ANN
//! workload.

use crate::error::TopKError;
use crate::gridselect::{QueueKind, WarpState};
use crate::keys::RadixKey;
use crate::scratch::ScratchGuard;
use crate::traits::{check_args, Category, TopKAlgorithm, TopKOutput};
use gpu_sim::device::WARP_SIZE;
use gpu_sim::warp::Lanes;
use gpu_sim::{
    Backend, BackendExt, BlockCtx, DeviceBuffer, Footprint, KernelContract, LaunchConfig,
};

/// Maximum supported K, same as the rest of the WarpSelect family.
pub use crate::gridselect::MAX_K;

/// A per-warp streaming top-K selector usable inside kernels.
///
/// Maintains the K smallest (value, payload) pairs pushed so far.
/// Values are compared in the IEEE total order (`-0.0 < +0.0`,
/// infinities ordered; NaN is rejected by a debug assertion).
pub struct WarpSelector {
    state: WarpState,
    queue: QueueKind,
    k: usize,
}

impl WarpSelector {
    /// Create a selector for the K smallest, with GridSelect's shared
    /// 32-slot queue. Allocates `O(K)` shared memory from the block's
    /// budget.
    pub fn new(ctx: &mut BlockCtx<'_>, k: usize) -> Self {
        Self::with_queue(ctx, k, QueueKind::Shared { len: WARP_SIZE })
    }

    /// Create with an explicit queueing strategy (per-thread queues
    /// reproduce plain WarpSelect).
    pub fn with_queue(ctx: &mut BlockCtx<'_>, k: usize, queue: QueueKind) -> Self {
        assert!((1..=MAX_K).contains(&k), "k = {k} out of range 1..={MAX_K}");
        let slots = match queue {
            QueueKind::Shared { len } => len,
            QueueKind::PerThread { len } => len * WARP_SIZE,
        };
        WarpSelector {
            state: WarpState::new(ctx, k, slots),
            queue,
            k,
        }
    }

    /// The current admission threshold: values ≥ this cannot enter the
    /// top-K (it is the Kth smallest seen so far, or +∞-like before K
    /// elements have been seen). Useful for early pruning in the
    /// producing kernel.
    pub fn threshold(&self) -> f32 {
        f32::from_ordered(self.state.threshold)
    }

    /// Push one lockstep group: lane `i` contributes
    /// `(values[i], payloads[i])` when `valid[i]`. Invalid lanes (e.g.
    /// the ragged tail of a loop) are ignored.
    pub fn push(
        &mut self,
        ctx: &mut BlockCtx<'_>,
        values: &Lanes<f32>,
        payloads: &Lanes<u32>,
        valid: &Lanes<bool>,
    ) {
        let mut keys: Lanes<u32> = [u32::MAX; WARP_SIZE];
        let mut preds: Lanes<bool> = [false; WARP_SIZE];
        for lane in 0..WARP_SIZE {
            if valid[lane] {
                debug_assert!(!values[lane].is_nan(), "NaN pushed into WarpSelector");
                let bits = values[lane].to_ordered();
                keys[lane] = bits;
                preds[lane] = bits < self.state.threshold;
            }
        }
        ctx.ops(2 * WARP_SIZE as u64);
        self.state
            .insert_group(ctx, &keys, payloads, &preds, self.queue);
    }

    /// Convenience: push a single `(value, payload)` from one lane.
    /// Prefer [`WarpSelector::push`] — per-element pushes waste the
    /// warp's parallelism, exactly like divergent CUDA code.
    pub fn push_one(&mut self, ctx: &mut BlockCtx<'_>, value: f32, payload: u32) {
        let mut values = [0.0f32; WARP_SIZE];
        let mut payloads = [0u32; WARP_SIZE];
        let mut valid = [false; WARP_SIZE];
        values[0] = value;
        payloads[0] = payload;
        valid[0] = true;
        self.push(ctx, &values, &payloads, &valid);
    }

    /// Drain the queue and return the K smallest seen, sorted
    /// ascending, as `(values, payloads)`. Fewer than K pushes yield
    /// fewer than K results.
    pub fn finish(mut self, ctx: &mut BlockCtx<'_>) -> (Vec<f32>, Vec<u32>) {
        self.state.drain(ctx, self.queue);
        let mut values = Vec::with_capacity(self.k);
        let mut payloads = Vec::with_capacity(self.k);
        for i in 0..self.k.min(self.state.list_keys.len()) {
            let bits = self.state.list_keys[i];
            if bits == u32::MAX {
                break; // fewer than K elements were pushed
            }
            values.push(f32::from_ordered(bits));
            payloads.push(self.state.list_idx[i]);
        }
        (values, payloads)
    }
}

/// Elements one phase-1 block streams through its [`WarpSelector`].
const STREAM_CHUNK: usize = 1 << 16;

/// The streaming device function wrapped as a standalone
/// [`TopKAlgorithm`], so the on-the-fly path runs under the same
/// correctness and sanitizer gates as the materialised algorithms
/// (`topk-bench sanitize` / `verify`).
///
/// Two phases, both pure [`WarpSelector`] streams: phase 1 launches one
/// warp per `STREAM_CHUNK`-element chunk, each maintaining a local
/// top-K and emitting at most K `(value, index)` candidates; phase 2
/// streams the candidate lists through a single warp to produce the
/// global top-K. A single-chunk input skips phase 2.
pub struct StreamingSelect {
    /// Queueing strategy for every selector (shared queue by default,
    /// like GridSelect).
    pub queue: QueueKind,
}

impl Default for StreamingSelect {
    fn default() -> Self {
        StreamingSelect {
            queue: QueueKind::Shared { len: WARP_SIZE },
        }
    }
}

impl StreamingSelect {
    /// One phase: stream `src[start..start+len]` (per block) through a
    /// selector and write each block's results + count to the outputs.
    #[allow(clippy::too_many_arguments)]
    fn launch_stream(
        &self,
        gpu: &mut dyn Backend,
        label: &str,
        blocks: usize,
        chunk: usize,
        n: usize,
        k: usize,
        src_val: DeviceBuffer<f32>,
        out_val: DeviceBuffer<f32>,
        out_idx: DeviceBuffer<u32>,
        out_len: DeviceBuffer<u32>,
    ) -> Result<(), TopKError> {
        let queue = self.queue;
        let contract = KernelContract::new(label)
            .reads(&src_val, Footprint::all())
            .writes(&out_val, Footprint::per_block(k))
            .writes(&out_idx, Footprint::per_block(k))
            .writes(&out_len, Footprint::per_block(1));
        gpu.try_launch_checked(
            &contract,
            LaunchConfig::grid_1d(blocks, WARP_SIZE),
            move |ctx| {
                let start = ctx.block_idx * chunk;
                let end = (start + chunk).min(n);
                let mut sel = WarpSelector::with_queue(ctx, k, queue);
                let mut g = start;
                while g < end {
                    let mut vals = [0.0f32; WARP_SIZE];
                    let mut pays = [0u32; WARP_SIZE];
                    let mut valid = [false; WARP_SIZE];
                    for lane in 0..WARP_SIZE {
                        let i = g + lane;
                        if i < end {
                            vals[lane] = ctx.ld(&src_val, i);
                            pays[lane] = i as u32;
                            valid[lane] = true;
                        }
                    }
                    sel.push(ctx, &vals, &pays, &valid);
                    g += WARP_SIZE;
                }
                let (v, p) = sel.finish(ctx);
                let base = ctx.block_idx * k;
                ctx.st(&out_len, ctx.block_idx, v.len() as u32);
                for (i, (vv, pp)) in v.iter().zip(&p).enumerate() {
                    ctx.st(&out_val, base + i, *vv);
                    ctx.st(&out_idx, base + i, *pp);
                }
            },
        )?;
        Ok(())
    }

    fn run(
        &self,
        gpu: &mut dyn Backend,
        ws: &mut ScratchGuard,
        outs: &mut ScratchGuard,
        input: &DeviceBuffer<f32>,
        k: usize,
    ) -> Result<TopKOutput, TopKError> {
        let n = input.len();
        // Full chunks must hold at least K elements so every block but
        // the last emits exactly K candidates.
        let chunk = STREAM_CHUNK.max(k);
        let blocks = n.div_ceil(chunk);

        let out_val = outs.alloc::<f32>(gpu, "ss_out_val", k)?;
        let out_idx = outs.alloc::<u32>(gpu, "ss_out_idx", k)?;
        if blocks == 1 {
            // n >= k, so the lone block emits exactly K results.
            let count = ws.alloc::<u32>(gpu, "ss_count", 1)?;
            self.launch_stream(
                gpu,
                "stream_select",
                1,
                chunk,
                n,
                k,
                input.clone(),
                out_val.clone(),
                out_idx.clone(),
                count,
            )?;
            return Ok(TopKOutput::new(out_val, out_idx));
        }

        // Phase 1: per-chunk local top-K into the candidate lists.
        let cand_val = ws.alloc::<f32>(gpu, "ss_cand_val", blocks * k)?;
        let cand_idx = ws.alloc::<u32>(gpu, "ss_cand_idx", blocks * k)?;
        let cand_len = ws.alloc::<u32>(gpu, "ss_cand_len", blocks)?;
        self.launch_stream(
            gpu,
            "stream_local",
            blocks,
            chunk,
            n,
            k,
            input.clone(),
            cand_val.clone(),
            cand_idx.clone(),
            cand_len.clone(),
        )?;

        // Phase 2: one warp streams the (ragged) candidate lists. Total
        // candidates >= K because every full chunk contributes K.
        let count = ws.alloc::<u32>(gpu, "ss_count", 1)?;
        let queue = self.queue;
        let (ovc, oic, occ) = (out_val.clone(), out_idx.clone(), count);
        let contract = KernelContract::new("stream_merge")
            .reads(&cand_len, Footprint::fixed(0, blocks))
            .reads(&cand_val, Footprint::all())
            .reads(&cand_idx, Footprint::all())
            .writes(&ovc, Footprint::fixed(0, k))
            .writes(&oic, Footprint::fixed(0, k))
            .writes(&occ, Footprint::elem(0))
            .requires_grid_at_most(1);
        gpu.try_launch_checked(&contract, LaunchConfig::grid_1d(1, WARP_SIZE), move |ctx| {
            let mut sel = WarpSelector::with_queue(ctx, k, queue);
            for b in 0..blocks {
                let len = ctx.ld(&cand_len, b) as usize;
                let base = b * k;
                let mut j = 0;
                while j < len {
                    let mut vals = [0.0f32; WARP_SIZE];
                    let mut pays = [0u32; WARP_SIZE];
                    let mut valid = [false; WARP_SIZE];
                    for lane in 0..WARP_SIZE {
                        if j + lane < len {
                            vals[lane] = ctx.ld(&cand_val, base + j + lane);
                            pays[lane] = ctx.ld(&cand_idx, base + j + lane);
                            valid[lane] = true;
                        }
                    }
                    sel.push(ctx, &vals, &pays, &valid);
                    j += WARP_SIZE;
                }
            }
            let (v, p) = sel.finish(ctx);
            ctx.st(&occ, 0, v.len() as u32);
            for (i, (vv, pp)) in v.iter().zip(&p).enumerate() {
                ctx.st(&ovc, i, *vv);
                ctx.st(&oic, i, *pp);
            }
        })?;
        Ok(TopKOutput::new(out_val, out_idx))
    }
}

impl TopKAlgorithm for StreamingSelect {
    fn name(&self) -> &'static str {
        "StreamingSelect"
    }

    fn category(&self) -> Category {
        Category::PartialSorting
    }

    fn max_k(&self) -> Option<usize> {
        Some(MAX_K)
    }

    fn try_select(
        &self,
        gpu: &mut dyn Backend,
        input: &DeviceBuffer<f32>,
        k: usize,
    ) -> Result<TopKOutput, TopKError> {
        check_args(self, input.len(), k)?;
        let mut ws = ScratchGuard::new();
        let mut outs = ScratchGuard::new();
        let r = self.run(gpu, &mut ws, &mut outs, input, k);
        ws.release(gpu);
        if r.is_err() {
            outs.release(gpu);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_topk;
    use datagen::{AnnDataset, AnnKind, Distribution};
    use gpu_sim::{DeviceSpec, Gpu, LaunchConfig};

    /// Drive a WarpSelector over a device buffer inside a kernel and
    /// return host-side results.
    fn stream_select(data: &[f32], k: usize) -> (Vec<f32>, Vec<u32>) {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input = gpu.htod("in", data);
        let n = data.len();
        let out_v = gpu.alloc::<f32>("ov", k);
        let out_i = gpu.alloc::<u32>("oi", k);
        let got_len = gpu.alloc::<u32>("len", 1);
        let (ovc, oic, glc) = (out_v.clone(), out_i.clone(), got_len.clone());
        gpu.launch("stream_select", LaunchConfig::grid_1d(1, 32), move |ctx| {
            let mut sel = WarpSelector::new(ctx, k);
            let mut g = 0;
            while g < n {
                let mut vals = [0.0f32; WARP_SIZE];
                let mut pays = [0u32; WARP_SIZE];
                let mut valid = [false; WARP_SIZE];
                for lane in 0..WARP_SIZE {
                    if g + lane < n {
                        vals[lane] = ctx.ld(&input, g + lane);
                        pays[lane] = (g + lane) as u32;
                        valid[lane] = true;
                    }
                }
                sel.push(ctx, &vals, &pays, &valid);
                g += WARP_SIZE;
            }
            let (v, p) = sel.finish(ctx);
            ctx.st(&glc, 0, v.len() as u32);
            for (i, (vv, pp)) in v.iter().zip(&p).enumerate() {
                ctx.st(&ovc, i, *vv);
                ctx.st(&oic, i, *pp);
            }
        });
        let len = got_len.get(0) as usize;
        (
            out_v.to_vec()[..len].to_vec(),
            out_i.to_vec()[..len].to_vec(),
        )
    }

    #[test]
    fn streaming_matches_reference() {
        for dist in Distribution::benchmark_set() {
            let data = datagen::generate(dist, 5000, 8);
            for k in [1usize, 32, 500] {
                let (v, i) = stream_select(&data, k);
                verify_topk(&data, k, &v, &i).unwrap();
                // finish() additionally promises ascending order.
                assert!(v.windows(2).all(|w| w[0].to_ordered() <= w[1].to_ordered()));
            }
        }
    }

    #[test]
    fn fewer_pushes_than_k() {
        let data = [3.0f32, 1.0, 2.0];
        let (v, i) = stream_select(&data, 3);
        // All 3 elements, k was larger than usable only by contract
        // k <= n in the driver; here k == n.
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
        assert_eq!(i, vec![1, 2, 0]);
    }

    #[test]
    fn threshold_tightens_monotonically() {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let observed = gpu.alloc::<f32>("thr", 3);
        let oc = observed.clone();
        gpu.launch("thr", LaunchConfig::grid_1d(1, 32), move |ctx| {
            let mut sel = WarpSelector::new(ctx, 4);
            ctx.st(&oc, 0, sel.threshold());
            // Push 64 descending values.
            for g in 0..2 {
                let vals: Lanes<f32> = std::array::from_fn(|l| 100.0 - (g * 32 + l) as f32);
                let pays: Lanes<u32> = std::array::from_fn(|l| (g * 32 + l) as u32);
                sel.push(ctx, &vals, &pays, &[true; WARP_SIZE]);
            }
            ctx.st(&oc, 1, sel.threshold());
            let (v, _) = sel.finish(ctx);
            ctx.st(&oc, 2, v[3]);
        });
        let t = observed.to_vec();
        assert!(
            t[0].is_nan() || t[0] > 1e30,
            "initial threshold is +inf-like"
        );
        assert!(t[1] <= 100.0, "threshold tightened after pushes: {}", t[1]);
        assert_eq!(t[2], 40.0, "4th smallest of 37..100 is 40");
    }

    #[test]
    fn push_one_works() {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let out = gpu.alloc::<f32>("o", 2);
        let oc = out.clone();
        gpu.launch("po", LaunchConfig::grid_1d(1, 32), move |ctx| {
            let mut sel = WarpSelector::new(ctx, 2);
            for (i, v) in [5.0f32, -1.0, 3.0, 0.5].into_iter().enumerate() {
                sel.push_one(ctx, v, i as u32);
            }
            let (v, _) = sel.finish(ctx);
            ctx.st(&oc, 0, v[0]);
            ctx.st(&oc, 1, v[1]);
        });
        assert_eq!(out.to_vec(), vec![-1.0, 0.5]);
    }

    #[test]
    fn streaming_select_algorithm_matches_reference() {
        // The standalone adapter, both the single-chunk path and the
        // two-phase (local + merge) path across a chunk boundary.
        let alg = StreamingSelect::default();
        for dist in Distribution::benchmark_set() {
            for (n, k) in [
                (5000, 33),
                (STREAM_CHUNK + 1234, 500),
                (3 * STREAM_CHUNK, 2048),
            ] {
                let data = datagen::generate(dist, n, (n + k) as u64);
                let mut gpu = Gpu::new(DeviceSpec::a100());
                let input = gpu.htod("in", &data);
                let out = alg.try_select(&mut gpu, &input, k).unwrap();
                verify_topk(&data, k, &out.values.to_vec(), &out.indices.to_vec())
                    .unwrap_or_else(|e| panic!("StreamingSelect n={n} k={k}: {e}"));
            }
        }
    }

    #[test]
    fn streaming_select_rejects_oversized_k() {
        let alg = StreamingSelect::default();
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let data = datagen::generate(Distribution::Uniform, 10_000, 7);
        let input = gpu.htod("in", &data);
        let err = alg.try_select(&mut gpu, &input, MAX_K + 1).unwrap_err();
        assert!(matches!(err, TopKError::InvalidK { .. }), "{err}");
    }

    #[test]
    fn fused_ann_saves_global_traffic() {
        // The §4 on-the-fly advantage, quantified: distance arrays
        // never hit device memory when selection is fused with the
        // distance kernel.
        let n = 8192;
        let k = 10;
        let ds = AnnDataset::generate(AnnKind::Deep1bLike, n, 1, 3);
        let dim = ds.dim;
        let flat = ds.vectors.clone();
        let query = ds.query(0).to_vec();
        let reference = ds.distance_array(0);

        // Fused: one kernel computes distances lane-by-lane and pushes.
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let vecs = gpu.htod("vectors", &flat);
        let q = gpu.htod("query", &query);
        let out_v = gpu.alloc::<f32>("ov", k);
        let out_i = gpu.alloc::<u32>("oi", k);
        gpu.reset_profile();
        let (ovc, oic) = (out_v.clone(), out_i.clone());
        gpu.launch(
            "fused_distance_topk",
            LaunchConfig::grid_1d(1, 32),
            move |ctx| {
                let mut qreg = vec![0.0f32; dim];
                for (d, slot) in qreg.iter_mut().enumerate() {
                    *slot = ctx.ld(&q, d);
                }
                let mut sel = WarpSelector::new(ctx, k);
                let mut base = 0;
                while base < n {
                    let mut vals = [0.0f32; WARP_SIZE];
                    let mut pays = [0u32; WARP_SIZE];
                    let mut valid = [false; WARP_SIZE];
                    for lane in 0..WARP_SIZE {
                        let v = base + lane;
                        if v < n {
                            let mut acc = 0.0f32;
                            for (d, qd) in qreg.iter().enumerate() {
                                let x = ctx.ld(&vecs, v * dim + d);
                                let diff = x - qd;
                                acc += diff * diff;
                            }
                            ctx.ops(2 * dim as u64);
                            vals[lane] = acc;
                            pays[lane] = v as u32;
                            valid[lane] = true;
                        }
                    }
                    sel.push(ctx, &vals, &pays, &valid);
                    base += WARP_SIZE;
                }
                let (v, p) = sel.finish(ctx);
                for (i, (vv, pp)) in v.iter().zip(&p).enumerate() {
                    ctx.st(&ovc, i, *vv);
                    ctx.st(&oic, i, *pp);
                }
            },
        );
        let fused_written: u64 = gpu
            .reports()
            .iter()
            .map(|r| r.stats.bytes_written + r.stats.bytes_scattered)
            .sum();

        verify_topk(&reference, k, &out_v.to_vec(), &out_i.to_vec()).unwrap();

        // Materialised pipeline writes the full N-length distance
        // array first.
        assert!(
            (fused_written as usize) < n * 4 / 4,
            "fused path must not write a distance array: wrote {fused_written} bytes"
        );
    }
}
