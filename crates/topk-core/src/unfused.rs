//! The *unfused* device-only radix top-K — Fig. 2's kernel
//! organisation, as an ablation of AIR Top-K's iteration fusion.
//!
//! §3.1 develops AIR Top-K in two steps: first make the classic radix
//! loop run entirely on the device (possible because the pass count is
//! input-independent), then *fuse*. This module is the first step
//! without the second: per pass it launches the four §2.3 kernels
//! separately —
//!
//! 1. `compute_histogram` (loads the candidates),
//! 2. `prefix_sum` (one block),
//! 3. `find_target_digit` (one block),
//! 4. `filter` (loads the candidates **again**, writes results and the
//!    next candidate buffer),
//!
//! i.e. 4 launches and two data sweeps per pass (Fig. 2's 16 calls at
//! b = 8; 12 at b = 11), versus AIR's one launch and one sweep
//! (Fig. 3). The paper's arithmetic: total loads drop from `Σ 2·Gᵢ`
//! (worst case 8N) to `2·G₁ + Σᵢ₌₂ Gᵢ` (worst case 5N). Candidates are
//! always buffered (no adaptive strategy) and there is no early
//! stopping — this is the pre-AIR design, minus the host round-trips.
//!
//! Comparing [`UnfusedRadix`] against [`crate::AirTopK`] isolates the
//! fusion benefit; comparing it against
//! [`RadixSelect`](../../topk_baselines/radixselect) isolates the
//! host-round-trip cost.

use crate::error::TopKError;
use crate::keys::{digit_of, digit_width_of, num_passes_of, RadixKey};
use crate::scratch::ScratchGuard;
use crate::traits::{check_args, Category, TopKAlgorithm, TopKOutput};
use gpu_sim::{Backend, BackendExt, DeviceBuffer, Footprint, KernelContract, LaunchConfig};

// Device control-block slots.
const K_REM: usize = 0;
const COUNT: usize = 1; // live candidates entering this pass
const TARGET: usize = 2;
const OUT_CURSOR: usize = 3;
const BUF_CURSOR: usize = 4;
const TIE_CURSOR: usize = 5;
const CTRL_LEN: usize = 6;

/// Device-only radix top-K without iteration fusion (the Fig. 2
/// organisation). Exists for the fusion ablation; use
/// [`crate::AirTopK`] for real work.
#[derive(Debug, Clone)]
pub struct UnfusedRadix {
    /// Digit width (default 11, same as AIR, so the pass counts
    /// compare one-to-one).
    pub bits_per_pass: u32,
}

impl Default for UnfusedRadix {
    fn default() -> Self {
        UnfusedRadix { bits_per_pass: 11 }
    }
}

impl TopKAlgorithm for UnfusedRadix {
    fn name(&self) -> &'static str {
        "UnfusedRadix"
    }

    fn category(&self) -> Category {
        Category::PartitionBased
    }

    fn try_select(
        &self,
        gpu: &mut dyn Backend,
        input: &DeviceBuffer<f32>,
        k: usize,
    ) -> Result<TopKOutput, TopKError> {
        check_args(self, input.len(), k)?;
        let mut ws = ScratchGuard::new();
        let mut outs = ScratchGuard::new();
        let r = self.run_passes(gpu, &mut ws, &mut outs, input, k);
        ws.release(gpu);
        if r.is_err() {
            outs.release(gpu);
        }
        r
    }
}

impl UnfusedRadix {
    fn run_passes(
        &self,
        gpu: &mut dyn Backend,
        ws: &mut ScratchGuard,
        outs: &mut ScratchGuard,
        input: &DeviceBuffer<f32>,
        k: usize,
    ) -> Result<TopKOutput, TopKError> {
        let n = input.len();
        let b = self.bits_per_pass;
        let passes = num_passes_of::<u32>(b) as usize;
        let radix = 1usize << b;

        let ctrl = ws.alloc::<u32>(gpu, "ur_ctrl", CTRL_LEN)?;
        ctrl.set(K_REM, k as u32);
        ctrl.set(COUNT, n as u32);
        // The output and tie cursors are only ever advanced by device
        // atomics; give them defined initial values (initcheck flags
        // the read-modify-write of a never-written word otherwise).
        ctrl.set(OUT_CURSOR, 0);
        ctrl.set(TIE_CURSOR, 0);
        let hist = ws.alloc::<u32>(gpu, "ur_hist", radix)?;
        let psum = ws.alloc::<u32>(gpu, "ur_psum", radix)?;
        // Classic candidate buffers: always used, sized N (§3.2 calls
        // out the 2× footprint this costs).
        let cand = [
            (
                ws.alloc::<u32>(gpu, "ur_cand_bits0", n)?,
                ws.alloc::<u32>(gpu, "ur_cand_idx0", n)?,
            ),
            (
                ws.alloc::<u32>(gpu, "ur_cand_bits1", n)?,
                ws.alloc::<u32>(gpu, "ur_cand_idx1", n)?,
            ),
        ];
        let out_val = outs.alloc::<f32>(gpu, "ur_out_val", k)?;
        let out_idx = outs.alloc::<u32>(gpu, "ur_out_idx", k)?;

        let chunk = 256 * 16;
        let launch = LaunchConfig::for_elements(n, 256, 16, usize::MAX);

        for pass in 0..passes {
            let first = pass == 0;
            let src = (pass + 1) % 2;
            let dst = pass % 2;

            // Kernel 1: compute histogram (first data sweep).
            hist.fill(0);
            {
                let (sb, si) = (cand[src].0.clone(), cand[src].1.clone());
                let input = input.clone();
                let (hist, ctrl) = (hist.clone(), ctrl.clone());
                let contract = KernelContract::new("compute_histogram")
                    .reads(&ctrl, Footprint::fixed(0, CTRL_LEN))
                    .reads(&input, Footprint::all())
                    .reads(&sb, Footprint::all())
                    .atomics(&hist, Footprint::fixed(0, radix))
                    .uses_shared_mem(radix * 4);
                gpu.try_launch_checked(&contract, launch, move |ctx| {
                    let count = ctx.ld(&ctrl, COUNT) as usize;
                    let start = ctx.block_idx * chunk;
                    let end = (start + chunk).min(count);
                    let mut local = ctx.shared_alloc::<u32>(radix);
                    for i in start..end {
                        let bits = if first {
                            ctx.ld(&input, i).to_ordered()
                        } else {
                            ctx.ld(&sb, i)
                        };
                        local[digit_of::<u32>(bits, pass as u32, b) as usize] += 1;
                        ctx.ops(4);
                        let _ = &si;
                    }
                    for (d, &c) in local.iter().enumerate() {
                        if c != 0 {
                            ctx.atomic_add(&hist, d, c);
                        }
                    }
                    ctx.ops(radix as u64);
                })?;
            }

            // Kernel 2: inclusive prefix sum (one block).
            {
                let (hist, psum) = (hist.clone(), psum.clone());
                let width = digit_width_of::<u32>(pass as u32, b);
                let contract = KernelContract::new("prefix_sum")
                    .reads(&hist, Footprint::fixed(0, 1 << width))
                    .writes(&psum, Footprint::fixed(0, 1 << width))
                    .requires_grid_at_most(1);
                gpu.try_launch_checked(&contract, LaunchConfig::grid_1d(1, 256), move |ctx| {
                    let mut acc = 0u32;
                    for d in 0..(1usize << width) {
                        acc += ctx.ld(&hist, d);
                        ctx.st(&psum, d, acc);
                    }
                    ctx.ops(2 << width);
                })?;
            }

            // Kernel 3: find the target digit (one block).
            {
                let (psum, ctrl) = (psum.clone(), ctrl.clone());
                let width = digit_width_of::<u32>(pass as u32, b);
                let contract = KernelContract::new("find_target_digit")
                    .reads(&psum, Footprint::fixed(0, 1 << width))
                    .coordinates(&ctrl, Footprint::fixed(0, CTRL_LEN))
                    .requires_grid_at_most(1);
                gpu.try_launch_checked(&contract, LaunchConfig::grid_1d(1, 256), move |ctx| {
                    let k_rem = ctx.ld(&ctrl, K_REM);
                    for d in 0..(1usize << width) {
                        if ctx.ld(&psum, d) >= k_rem {
                            let below = if d > 0 { ctx.ld(&psum, d - 1) } else { 0 };
                            ctx.st(&ctrl, TARGET, d as u32);
                            ctx.st(&ctrl, K_REM, k_rem - below);
                            ctx.st(&ctrl, BUF_CURSOR, 0);
                            break;
                        }
                    }
                    ctx.ops(2 << width);
                })?;
            }

            // Kernel 4: filter (second data sweep) — emit results,
            // buffer candidates; ties by rank on the last pass.
            let is_last = pass + 1 == passes;
            {
                let (sb, si) = (cand[src].0.clone(), cand[src].1.clone());
                let (db, di) = (cand[dst].0.clone(), cand[dst].1.clone());
                let input = input.clone();
                let (ctrl, hist) = (ctrl.clone(), hist.clone());
                let (out_val, out_idx) = (out_val.clone(), out_idx.clone());
                let contract = KernelContract::new("filter")
                    .reads(&input, Footprint::all())
                    .reads(&sb, Footprint::all())
                    .reads(&si, Footprint::all())
                    .reads(&hist, Footprint::fixed(0, radix))
                    .coordinates(&ctrl, Footprint::fixed(0, CTRL_LEN))
                    .writes_shared(&out_val, Footprint::all())
                    .writes_shared(&out_idx, Footprint::all())
                    .writes_shared(&db, Footprint::all())
                    .writes_shared(&di, Footprint::all());
                gpu.try_launch_checked(&contract, launch, move |ctx| {
                    let count = ctx.ld(&ctrl, COUNT) as usize;
                    let target = ctx.ld(&ctrl, TARGET);
                    let k_rem = ctx.ld(&ctrl, K_REM);
                    let start = ctx.block_idx * chunk;
                    let end = (start + chunk).min(count);
                    for i in start..end {
                        let (bits, idx) = if first {
                            (ctx.ld(&input, i).to_ordered(), i as u32)
                        } else {
                            (ctx.ld(&sb, i), ctx.ld(&si, i))
                        };
                        let d = digit_of::<u32>(bits, pass as u32, b);
                        ctx.ops(4);
                        if d < target {
                            let pos = ctx.atomic_add(&ctrl, OUT_CURSOR, 1) as usize;
                            ctx.st_scatter(&out_val, pos, f32::from_ordered(bits));
                            ctx.st_scatter(&out_idx, pos, idx);
                        } else if d == target {
                            if is_last {
                                let rank = ctx.atomic_add(&ctrl, TIE_CURSOR, 1);
                                if rank < k_rem {
                                    let pos = ctx.atomic_add(&ctrl, OUT_CURSOR, 1) as usize;
                                    ctx.st_scatter(&out_val, pos, f32::from_ordered(bits));
                                    ctx.st_scatter(&out_idx, pos, idx);
                                }
                            } else {
                                let pos = ctx.atomic_add(&ctrl, BUF_CURSOR, 1) as usize;
                                ctx.st_scatter(&db, pos, bits);
                                ctx.st_scatter(&di, pos, idx);
                            }
                        }
                    }
                    // The last finishing block publishes the next
                    // pass's candidate count (device-only bookkeeping;
                    // no host copy, unlike RadixSelect).
                    if ctx.mark_block_done() && !is_last {
                        let c = ctx.ld(&hist, target as usize);
                        ctx.st(&ctrl, COUNT, c);
                    }
                })?;
            }
        }

        Ok(TopKOutput::new(out_val, out_idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::air::AirTopK;
    use crate::verify::verify_topk;
    use datagen::{generate, Distribution};
    use gpu_sim::{DeviceSpec, Gpu};

    fn run_case(data: &[f32], k: usize) {
        let mut g = Gpu::new(DeviceSpec::a100());
        let input = g.htod("in", data);
        let out = UnfusedRadix::default().select(&mut g, &input, k);
        verify_topk(data, k, &out.values.to_vec(), &out.indices.to_vec())
            .unwrap_or_else(|e| panic!("UnfusedRadix failed: {e} (n={}, k={k})", data.len()));
    }

    #[test]
    fn correct_on_all_distributions() {
        for dist in Distribution::benchmark_set() {
            let data = generate(dist, 30_000, 3);
            for k in [1usize, 100, 2048, 29_999, 30_000] {
                run_case(&data, k);
            }
        }
    }

    #[test]
    fn ties_and_identical() {
        run_case(&vec![1.25f32; 4096], 777);
        let mut data = vec![2.0f32; 5000];
        data.extend(vec![1.0f32; 5000]);
        run_case(&data, 7500);
    }

    #[test]
    fn launches_four_kernels_per_pass_like_figure_2() {
        let mut g = Gpu::new(DeviceSpec::a100());
        let data = generate(Distribution::Uniform, 100_000, 1);
        let input = g.htod("in", &data);
        g.reset_profile();
        let _ = UnfusedRadix::default().select(&mut g, &input, 1000);
        // 3 passes (b = 11) x 4 kernels = 12 launches; with b = 8 it
        // would be Fig. 2's 16.
        assert_eq!(g.timeline().kernel_count(), 12);
        // Device-only: still no PCIe traffic.
        assert_eq!(g.timeline().memcpy_us(), 0.0);
    }

    #[test]
    fn fusion_ablation_air_wins_on_traffic_and_launches() {
        // §3.1's two claims, isolated from host-sync effects: fusion
        // reduces kernel launches ~3-4x and data loading toward the
        // 8N -> 5N bound.
        let data = generate(Distribution::Uniform, 1 << 20, 9);
        let k = 2048;
        let run = |alg: &dyn TopKAlgorithm| {
            let mut g = Gpu::new(DeviceSpec::a100());
            let input = g.htod("in", &data);
            g.reset_profile();
            let out = alg.select(&mut g, &input, k);
            verify_topk(&data, k, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
            (
                g.timeline().kernel_count(),
                g.reports().iter().map(|r| r.stats.bytes_read).sum::<u64>(),
                g.elapsed_us(),
            )
        };
        let (k_unfused, rd_unfused, t_unfused) = run(&UnfusedRadix::default());
        let (k_air, rd_air, t_air) = run(&AirTopK::default());
        assert!(k_air < k_unfused, "{k_air} vs {k_unfused} launches");
        assert!(
            rd_air < rd_unfused,
            "fused reads {rd_air} must undercut unfused {rd_unfused}"
        );
        assert!(t_air < t_unfused, "{t_air} vs {t_unfused} us");
    }

    #[test]
    fn eight_bit_digits_reproduce_figure_2_exactly() {
        let mut g = Gpu::new(DeviceSpec::a100());
        let data = generate(Distribution::Uniform, 50_000, 1);
        let input = g.htod("in", &data);
        g.reset_profile();
        let out = UnfusedRadix { bits_per_pass: 8 }.select(&mut g, &input, 100);
        verify_topk(&data, 100, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
        assert_eq!(g.timeline().kernel_count(), 16, "Fig. 2's 16 kernel calls");
    }
}
