//! Largest-K selection.
//!
//! The paper's problem statement (§2.1) covers "the smallest (or
//! largest) K elements"; all algorithms here implement smallest-K.
//! [`SelectLargest`] adapts any smallest-K algorithm to largest-K by
//! running it over the negated ordered keys: a device-side negation
//! kernel writes `-x` (bitwise total-order negation, so ±0, infinities
//! and the full float range behave), the wrapped algorithm selects, and
//! the returned values are negated back. Indices pass through
//! untouched.
//!
//! The extra cost is one streaming pass over the input (2 × N × 4
//! bytes), which the adapter's metering makes visible — a real
//! deployment would instead flip the comparison inside the kernels,
//! which is exactly what `AirTopK` does natively via
//! [`crate::keys::RadixKey`] if you feed it pre-negated keys. The
//! adapter exists for composability with *any* algorithm.

use crate::error::TopKError;
use crate::keys::RadixKey;
use crate::traits::{Category, TopKAlgorithm, TopKOutput};
use gpu_sim::{Backend, BackendExt, DeviceBuffer, Footprint, KernelContract, LaunchConfig};

/// Total-order negation on f32: maps x so that the smallest-K of the
/// mapped values are the largest-K of the originals, bijectively.
/// Implemented in the ordered-bit domain (`!ordered`), which reverses
/// the total order including `-0.0`/`+0.0` and infinities.
#[inline(always)]
pub fn order_negate(x: f32) -> f32 {
    f32::from_ordered(!x.to_ordered())
}

/// Adapter: largest-K via any smallest-K [`TopKAlgorithm`].
///
/// ```
/// use gpu_sim::{Gpu, DeviceSpec};
/// use topk_core::{AirTopK, SelectLargest, TopKAlgorithm};
///
/// let mut gpu = Gpu::new(DeviceSpec::a100());
/// let data: Vec<f32> = (0..10_000).map(|i| (i % 251) as f32).collect();
/// let input = gpu.htod("scores", &data);
/// let out = SelectLargest::new(AirTopK::default()).select(&mut gpu, &input, 5);
/// assert!(out.values.to_vec().iter().all(|&v| v == 250.0));
/// ```
pub struct SelectLargest<A> {
    inner: A,
}

impl<A: TopKAlgorithm> SelectLargest<A> {
    /// Wrap a smallest-K algorithm.
    pub fn new(inner: A) -> Self {
        SelectLargest { inner }
    }

    /// The wrapped algorithm.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    fn negate_buffer(
        gpu: &mut dyn Backend,
        input: &DeviceBuffer<f32>,
    ) -> Result<DeviceBuffer<f32>, TopKError> {
        let n = input.len();
        let out = gpu.try_alloc::<f32>("neg_keys", n)?;
        let inp = input.clone();
        let o = out.clone();
        let contract = KernelContract::new("order_negate")
            .reads(&inp, Footprint::tiles(256 * 8))
            .writes(&o, Footprint::tiles(256 * 8));
        let launched = gpu.try_launch_checked(
            &contract,
            LaunchConfig::for_elements(n, 256, 8, usize::MAX),
            move |ctx| {
                let chunk = 256 * 8;
                let start = ctx.block_idx * chunk;
                let end = (start + chunk).min(n);
                for i in start..end {
                    let v = ctx.ld(&inp, i);
                    ctx.st(&o, i, order_negate(v));
                    ctx.ops(2);
                }
            },
        );
        if let Err(e) = launched {
            gpu.free(&out);
            return Err(e.into());
        }
        Ok(out)
    }

    fn restore_output(gpu: &mut dyn Backend, out: &TopKOutput) -> Result<TopKOutput, TopKError> {
        let k = out.values.len();
        let fixed = gpu.try_alloc::<f32>("restored_values", k)?;
        let src = out.values.clone();
        let dst = fixed.clone();
        let contract = KernelContract::new("order_negate_back")
            .reads(&src, Footprint::tiles(256))
            .writes(&dst, Footprint::tiles(256));
        let launched = gpu.try_launch_checked(
            &contract,
            LaunchConfig::for_elements(k, 256, 1, usize::MAX),
            move |ctx| {
                let start = ctx.block_idx * 256;
                let end = (start + 256).min(k);
                for i in start..end {
                    let v = ctx.ld(&src, i);
                    ctx.st(&dst, i, order_negate(v));
                    ctx.ops(2);
                }
            },
        );
        if let Err(e) = launched {
            gpu.free(&fixed);
            return Err(e.into());
        }
        Ok(TopKOutput::new(fixed, out.indices.clone()))
    }
}

impl<A: TopKAlgorithm> TopKAlgorithm for SelectLargest<A> {
    fn name(&self) -> &'static str {
        // The inner name stays visible through `category`/`max_k`;
        // a static name keeps the trait object-safe.
        "SelectLargest"
    }

    fn category(&self) -> Category {
        self.inner.category()
    }

    fn max_k(&self) -> Option<usize> {
        self.inner.max_k()
    }

    fn try_select(
        &self,
        gpu: &mut dyn Backend,
        input: &DeviceBuffer<f32>,
        k: usize,
    ) -> Result<TopKOutput, TopKError> {
        let negated = Self::negate_buffer(gpu, input)?;
        let out = self.inner.try_select(gpu, &negated, k);
        gpu.free(&negated);
        let out = out?;
        let restored = Self::restore_output(gpu, &out);
        // The inner (negated-domain) values are no longer referenced
        // either way; return their bytes so error paths stay honest.
        gpu.free(&out.values);
        if restored.is_err() {
            gpu.free(&out.indices);
        }
        restored
    }

    fn try_select_batch(
        &self,
        gpu: &mut dyn Backend,
        inputs: &[DeviceBuffer<f32>],
        k: usize,
    ) -> Result<Vec<TopKOutput>, TopKError> {
        let mut negated: Vec<DeviceBuffer<f32>> = Vec::with_capacity(inputs.len());
        for b in inputs {
            match Self::negate_buffer(gpu, b) {
                Ok(buf) => negated.push(buf),
                Err(e) => {
                    for nb in &negated {
                        gpu.free(nb);
                    }
                    return Err(e);
                }
            }
        }
        let outs = self.inner.try_select_batch(gpu, &negated, k);
        for nb in &negated {
            gpu.free(nb);
        }
        let outs = outs?;
        let mut restored = Vec::with_capacity(outs.len());
        for (done, o) in outs.iter().enumerate() {
            match Self::restore_output(gpu, o) {
                Ok(r) => {
                    gpu.free(&o.values);
                    restored.push(r);
                }
                Err(e) => {
                    // Release everything this call still owns: the
                    // not-yet-restored inner outputs and the restored
                    // values (their index buffers are shared with the
                    // inner outputs, freed once via the inner handle).
                    for rem in &outs[done..] {
                        gpu.free(&rem.values);
                    }
                    for o in &outs {
                        gpu.free(&o.indices);
                    }
                    for r in &restored {
                        gpu.free(&r.values);
                    }
                    return Err(e);
                }
            }
        }
        Ok(restored)
    }
}

/// Reference largest-K (host-side), for verification.
pub fn reference_largest(input: &[f32], k: usize) -> (Vec<f32>, Vec<u32>) {
    assert!(k <= input.len());
    let mut order: Vec<u32> = (0..input.len() as u32).collect();
    order.sort_unstable_by_key(|&i| (std::cmp::Reverse(input[i as usize].to_ordered()), i));
    order.truncate(k);
    let values = order.iter().map(|&i| input[i as usize]).collect();
    (values, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::air::AirTopK;
    use crate::gridselect::GridSelect;
    use gpu_sim::{DeviceSpec, Gpu};

    fn check_largest(out: &TopKOutput, input: &[f32], k: usize) {
        let got: Vec<u32> = {
            let mut v: Vec<u32> = out.values.to_vec().iter().map(|x| x.to_ordered()).collect();
            v.sort_unstable();
            v
        };
        let (expect_vals, _) = reference_largest(input, k);
        let mut expect: Vec<u32> = expect_vals.iter().map(|x| x.to_ordered()).collect();
        expect.sort_unstable();
        assert_eq!(got, expect, "value multiset");
        // Index/value linkage.
        let idx = out.indices.to_vec();
        let vals = out.values.to_vec();
        let mut seen = std::collections::HashSet::new();
        for (v, i) in vals.iter().zip(&idx) {
            assert_eq!(input[*i as usize].to_bits(), v.to_bits());
            assert!(seen.insert(*i), "duplicate index {i}");
        }
    }

    #[test]
    fn order_negate_reverses_total_order() {
        let xs = [
            f32::NEG_INFINITY,
            -1.0,
            -0.0,
            0.0,
            1.0,
            f32::MAX,
            f32::INFINITY,
        ];
        for w in xs.windows(2) {
            assert!(order_negate(w[0]).to_ordered() > order_negate(w[1]).to_ordered());
        }
        for &x in &xs {
            assert_eq!(order_negate(order_negate(x)).to_bits(), x.to_bits());
        }
    }

    #[test]
    fn largest_with_air() {
        let data = datagen::generate(datagen::Distribution::Normal, 10_000, 3);
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input = gpu.htod("in", &data);
        let alg = SelectLargest::new(AirTopK::default());
        let out = alg.select(&mut gpu, &input, 100);
        check_largest(&out, &data, 100);
    }

    #[test]
    fn largest_with_gridselect_and_batch() {
        let datas: Vec<Vec<f32>> = (0..3)
            .map(|i| datagen::generate(datagen::Distribution::Uniform, 5_000, i))
            .collect();
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let inputs: Vec<_> = datas
            .iter()
            .enumerate()
            .map(|(i, d)| gpu.htod(&format!("p{i}"), d))
            .collect();
        let alg = SelectLargest::new(GridSelect::default());
        let outs = alg.select_batch(&mut gpu, &inputs, 33);
        for (d, o) in datas.iter().zip(&outs) {
            check_largest(o, d, 33);
        }
    }

    #[test]
    fn largest_handles_ties_and_specials() {
        let data = vec![
            f32::INFINITY,
            f32::INFINITY,
            1.0,
            1.0,
            -0.0,
            0.0,
            f32::NEG_INFINITY,
        ];
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input = gpu.htod("in", &data);
        let alg = SelectLargest::new(AirTopK::default());
        for k in 1..=data.len() {
            let out = alg.select(&mut gpu, &input, k);
            check_largest(&out, &data, k);
        }
    }

    #[test]
    fn adapter_preserves_limits() {
        let alg = SelectLargest::new(GridSelect::default());
        assert_eq!(alg.max_k(), Some(2048));
        assert_eq!(alg.category(), Category::PartialSorting);
    }

    #[test]
    fn reference_largest_basic() {
        let input = [1.0f32, 5.0, 3.0, 5.0];
        let (v, i) = reference_largest(&input, 2);
        assert_eq!(v, vec![5.0, 5.0]);
        assert_eq!(i, vec![1, 3]);
    }
}
