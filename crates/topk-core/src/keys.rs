//! Order-preserving radix key mappings and digit extraction.
//!
//! Radix selection needs keys whose *unsigned bit order* matches their
//! numeric order. IEEE-754 floats don't have that property (negative
//! floats compare reversed, and the sign bit puts them above the
//! positives), so radix top-K implementations apply the classic
//! monotone transform first:
//!
//! * positive floats: set the sign bit;
//! * negative floats: flip all bits.
//!
//! The transform is a bijection, so candidates can be carried through
//! passes in either representation; we convert on load and invert only
//! when materialising outputs.
//!
//! Both 32-bit keys (`f32`/`u32`/`i32` → `u32` bits, 3 passes of
//! 11-bit digits) and 64-bit keys (`f64`/`u64`/`i64` → `u64` bits, 6
//! passes) are supported, via the [`OrderedBits`] width abstraction —
//! mirroring RAFT's dtype-templated `select_k`.

use gpu_sim::memory::DeviceScalar;

/// An unsigned bit-string type that radix passes can be run over.
pub trait OrderedBits:
    Copy + Ord + Eq + Default + Send + Sync + std::fmt::Debug + std::hash::Hash + 'static
{
    /// Width in bits (32 or 64).
    const BITS: u32;
    /// The all-zero value.
    const ZERO: Self;
    /// The all-ones value (useful as a +∞-like sentinel).
    const MAX: Self;

    /// Logical shift right.
    fn shr(self, n: u32) -> Self;
    /// Widen to `u64` (lossless for both widths).
    fn to_u64(self) -> u64;
    /// Truncating conversion from `u64`.
    fn from_u64(v: u64) -> Self;
}

impl OrderedBits for u32 {
    const BITS: u32 = 32;
    const ZERO: Self = 0;
    const MAX: Self = u32::MAX;

    #[inline(always)]
    fn shr(self, n: u32) -> Self {
        self >> n
    }
    #[inline(always)]
    fn to_u64(self) -> u64 {
        self as u64
    }
    #[inline(always)]
    fn from_u64(v: u64) -> Self {
        v as u32
    }
}

impl OrderedBits for u64 {
    const BITS: u32 = 64;
    const ZERO: Self = 0;
    const MAX: Self = u64::MAX;

    #[inline(always)]
    fn shr(self, n: u32) -> Self {
        self >> n
    }
    #[inline(always)]
    fn to_u64(self) -> u64 {
        self
    }
    #[inline(always)]
    fn from_u64(v: u64) -> Self {
        v
    }
}

/// A key type usable by the radix top-K algorithms.
///
/// `to_ordered` maps the value to unsigned bits whose order equals the
/// key's total order (for floats: the IEEE-754 total order on non-NaN
/// values, with `-0.0 < +0.0`). `from_ordered` inverts it.
pub trait RadixKey: DeviceScalar + PartialOrd {
    /// The order-preserving bit representation (`u32` or `u64`).
    type Ordered: OrderedBits;

    /// Map to order-preserving bits.
    fn to_ordered(self) -> Self::Ordered;
    /// Inverse of [`RadixKey::to_ordered`].
    fn from_ordered(bits: Self::Ordered) -> Self;
}

impl RadixKey for f32 {
    type Ordered = u32;

    #[inline(always)]
    fn to_ordered(self) -> u32 {
        let b = self.to_bits();
        if b & 0x8000_0000 != 0 {
            !b
        } else {
            b | 0x8000_0000
        }
    }

    #[inline(always)]
    fn from_ordered(bits: u32) -> f32 {
        let b = if bits & 0x8000_0000 != 0 {
            bits & 0x7fff_ffff
        } else {
            !bits
        };
        f32::from_bits(b)
    }
}

impl RadixKey for u32 {
    type Ordered = u32;

    #[inline(always)]
    fn to_ordered(self) -> u32 {
        self
    }

    #[inline(always)]
    fn from_ordered(bits: u32) -> u32 {
        bits
    }
}

impl RadixKey for i32 {
    type Ordered = u32;

    #[inline(always)]
    fn to_ordered(self) -> u32 {
        (self as u32) ^ 0x8000_0000
    }

    #[inline(always)]
    fn from_ordered(bits: u32) -> i32 {
        (bits ^ 0x8000_0000) as i32
    }
}

impl RadixKey for f64 {
    type Ordered = u64;

    #[inline(always)]
    fn to_ordered(self) -> u64 {
        let b = self.to_bits();
        if b & 0x8000_0000_0000_0000 != 0 {
            !b
        } else {
            b | 0x8000_0000_0000_0000
        }
    }

    #[inline(always)]
    fn from_ordered(bits: u64) -> f64 {
        let b = if bits & 0x8000_0000_0000_0000 != 0 {
            bits & 0x7fff_ffff_ffff_ffff
        } else {
            !bits
        };
        f64::from_bits(b)
    }
}

impl RadixKey for u64 {
    type Ordered = u64;

    #[inline(always)]
    fn to_ordered(self) -> u64 {
        self
    }

    #[inline(always)]
    fn from_ordered(bits: u64) -> u64 {
        bits
    }
}

impl RadixKey for i64 {
    type Ordered = u64;

    #[inline(always)]
    fn to_ordered(self) -> u64 {
        (self as u64) ^ 0x8000_0000_0000_0000
    }

    #[inline(always)]
    fn from_ordered(bits: u64) -> i64 {
        (bits ^ 0x8000_0000_0000_0000) as i64
    }
}

/// Key width of a 32-bit key (kept for the f32-centric call sites).
pub const KEY_BITS: u32 = 32;

/// Number of radix passes needed for `bits_per_pass`-wide digits over
/// an `O`-wide key: 3 for 32-bit keys with b = 11, 6 for 64-bit.
#[inline]
pub fn num_passes_of<O: OrderedBits>(bits_per_pass: u32) -> u32 {
    O::BITS.div_ceil(bits_per_pass)
}

/// [`num_passes_of`] for 32-bit keys (the paper's configuration).
#[inline]
pub const fn num_passes(bits_per_pass: u32) -> u32 {
    KEY_BITS.div_ceil(bits_per_pass)
}

/// Width of the digit processed in `pass` (0-based, MSD first) for an
/// `O`-wide key. All passes use `bits_per_pass` bits except possibly
/// the last, e.g. 11-bit digits split 32 bits as 11 + 11 + 10.
#[inline]
pub fn digit_width_of<O: OrderedBits>(pass: u32, bits_per_pass: u32) -> u32 {
    let used = pass * bits_per_pass;
    let remaining = O::BITS - used;
    remaining.min(bits_per_pass)
}

/// [`digit_width_of`] for 32-bit keys.
#[inline]
pub const fn digit_width(pass: u32, bits_per_pass: u32) -> u32 {
    let used = pass * bits_per_pass;
    let remaining = KEY_BITS - used;
    if remaining < bits_per_pass {
        remaining
    } else {
        bits_per_pass
    }
}

/// Extract the digit of `bits` for `pass` (0-based, most significant
/// digit first). Digits are at most 16 bits, so `u32` holds them for
/// both key widths.
#[inline(always)]
pub fn digit_of<O: OrderedBits>(bits: O, pass: u32, bits_per_pass: u32) -> u32 {
    let width = digit_width_of::<O>(pass, bits_per_pass);
    let shift = O::BITS - pass * bits_per_pass - width;
    (bits.shr(shift).to_u64() & ((1u64 << width) - 1)) as u32
}

/// [`digit_of`] for 32-bit keys (the hot f32 path keeps the direct
/// u32 arithmetic).
#[inline(always)]
pub fn digit(bits: u32, pass: u32, bits_per_pass: u32) -> u32 {
    let width = digit_width(pass, bits_per_pass);
    let shift = KEY_BITS - pass * bits_per_pass - width;
    (bits >> shift) & (((1u64 << width) - 1) as u32)
}

/// Extract an arbitrary-position digit: the `width` bits of `bits`
/// starting `offset` bits from the most-significant end. Unlike
/// [`digit_of`], the field is not tied to a fixed pass grid — this is
/// what RadiK-style *adaptive digit ordering* needs, where each pass's
/// bit window starts wherever the previous pass's surviving candidates
/// stopped sharing a prefix.
#[inline(always)]
pub fn digit_at<O: OrderedBits>(bits: O, offset: u32, width: u32) -> u32 {
    debug_assert!(offset + width <= O::BITS, "digit window out of range");
    debug_assert!((1..=16).contains(&width), "digit width out of range");
    (bits.shr(O::BITS - offset - width).to_u64() & ((1u64 << width) - 1)) as u32
}

/// Length of the common most-significant-bit prefix of two keys:
/// `O::BITS` when they are equal. Two radix-adversarial keys sharing
/// their top `m` bits return at least `m` — the quantity a
/// skew-resistant selector uses to skip degenerate passes.
#[inline(always)]
pub fn common_prefix_len_of<O: OrderedBits>(a: O, b: O) -> u32 {
    let x = a.to_u64() ^ b.to_u64();
    if x == 0 {
        O::BITS
    } else {
        x.leading_zeros() - (64 - O::BITS)
    }
}

/// The high `n` bits of `bits` (the accumulated prefix after `n` bits
/// have been processed), widened to `u64`. `prefix_of(bits, 0) == 0`.
#[inline(always)]
pub fn prefix_of<O: OrderedBits>(bits: O, n: u32) -> u64 {
    if n == 0 {
        0
    } else {
        bits.shr(O::BITS - n).to_u64()
    }
}

/// [`prefix_of`] for 32-bit keys.
#[inline(always)]
pub fn prefix(bits: u32, n: u32) -> u32 {
    if n == 0 {
        0
    } else {
        bits >> (KEY_BITS - n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ordered_respects<T: RadixKey + Copy>(a: T, b: T) {
        assert_eq!(
            a.partial_cmp(&b).unwrap(),
            a.to_ordered().cmp(&b.to_ordered()),
            "ordering mismatch"
        );
    }

    #[test]
    fn f32_ordered_is_monotone() {
        let samples = [
            f32::NEG_INFINITY,
            -1e30,
            -2.5,
            -1.0,
            -f32::MIN_POSITIVE,
            0.0,
            f32::MIN_POSITIVE,
            0.5,
            1.0,
            1.00049,
            3.5e12,
            f32::INFINITY,
        ];
        for w in samples.windows(2) {
            ordered_respects(w[0], w[1]);
        }
    }

    #[test]
    fn f64_ordered_is_monotone_and_roundtrips() {
        let samples = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            1.0,
            1e300,
            f64::INFINITY,
        ];
        for w in samples.windows(2) {
            assert!(w[0].to_ordered() < w[1].to_ordered());
        }
        for &v in &samples {
            assert_eq!(f64::from_ordered(v.to_ordered()).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn f32_negative_zero_sorts_below_positive_zero() {
        assert!((-0.0f32).to_ordered() < 0.0f32.to_ordered());
        assert!((-0.0f64).to_ordered() < 0.0f64.to_ordered());
    }

    #[test]
    fn f32_roundtrip_bit_exact() {
        for v in [
            0.0f32,
            -0.0,
            1.5,
            -3.25,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE,
            -f32::MIN_POSITIVE,
            1e-42, // subnormal
        ] {
            assert_eq!(f32::from_ordered(v.to_ordered()).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn integer_keys_are_monotone_and_roundtrip() {
        let s32 = [i32::MIN, -100, -1, 0, 1, 100, i32::MAX];
        for w in s32.windows(2) {
            ordered_respects(w[0], w[1]);
        }
        for &v in &s32 {
            assert_eq!(i32::from_ordered(v.to_ordered()), v);
        }
        let s64 = [i64::MIN, -1_000_000_000_000, -1, 0, 1, i64::MAX];
        for w in s64.windows(2) {
            assert!(w[0].to_ordered() < w[1].to_ordered());
        }
        for &v in &s64 {
            assert_eq!(i64::from_ordered(v.to_ordered()), v);
        }
        assert_eq!(7u32.to_ordered(), 7);
        assert_eq!(u64::from_ordered(7), 7);
    }

    #[test]
    fn pass_arithmetic_for_11_bit_digits() {
        assert_eq!(num_passes(11), 3);
        assert_eq!(digit_width(0, 11), 11);
        assert_eq!(digit_width(1, 11), 11);
        assert_eq!(digit_width(2, 11), 10);
        assert_eq!(num_passes(8), 4);
        for p in 0..4 {
            assert_eq!(digit_width(p, 8), 8);
        }
    }

    #[test]
    fn pass_arithmetic_for_64_bit_keys() {
        assert_eq!(num_passes_of::<u64>(11), 6);
        assert_eq!(num_passes_of::<u64>(8), 8);
        assert_eq!(num_passes_of::<u32>(11), 3);
        assert_eq!(digit_width_of::<u64>(0, 11), 11);
        assert_eq!(digit_width_of::<u64>(5, 11), 9); // 64 - 55
    }

    #[test]
    fn digits_reassemble_the_key() {
        for bits in [0u32, 0xdead_beef, u32::MAX, 0x8000_0001] {
            for b in [8u32, 11] {
                let mut acc: u64 = 0;
                for p in 0..num_passes(b) {
                    acc = (acc << digit_width(p, b)) | digit(bits, p, b) as u64;
                }
                assert_eq!(acc as u32, bits, "b = {b}");
            }
        }
    }

    #[test]
    fn digits_reassemble_64_bit_keys() {
        for bits in [0u64, 0xdead_beef_cafe_f00d, u64::MAX, 1u64 << 63] {
            for b in [8u32, 11] {
                let mut acc: u128 = 0;
                for p in 0..num_passes_of::<u64>(b) {
                    acc =
                        (acc << digit_width_of::<u64>(p, b)) | digit_of::<u64>(bits, p, b) as u128;
                }
                assert_eq!(acc as u64, bits, "b = {b}");
            }
        }
    }

    #[test]
    fn generic_digit_agrees_with_u32_fast_path() {
        for bits in [0u32, 0x1234_5678, u32::MAX] {
            for b in [8u32, 11] {
                for p in 0..num_passes(b) {
                    assert_eq!(digit(bits, p, b), digit_of::<u32>(bits, p, b));
                }
            }
        }
    }

    #[test]
    fn digit_matches_figure_1_example() {
        // Fig. 1: 4-bit elements, 2-bit digits. Element 0b0111 has first
        // digit 01 and second digit 11. Our keys are 32-bit; emulate by
        // placing the nibble at the top.
        let bits = 0b0111u32 << 28;
        assert_eq!(digit(bits, 0, 2), 0b01);
        assert_eq!(digit(bits, 1, 2), 0b11);
    }

    #[test]
    fn digit_at_reads_arbitrary_windows() {
        let bits = 0xABCD_1234u32;
        // Aligned windows agree with the pass-grid extraction.
        for b in [8u32, 11] {
            for p in 0..num_passes(b) {
                let off = p * b;
                let w = digit_width(p, b);
                assert_eq!(digit_at::<u32>(bits, off, w), digit(bits, p, b));
            }
        }
        // Unaligned windows: bits 4..12 of 0xABCD_1234 are 0xBC.
        assert_eq!(digit_at::<u32>(bits, 4, 8), 0xBC);
        assert_eq!(digit_at::<u64>(0xABCD_0000_0000_0000u64, 4, 8), 0xBC);
    }

    #[test]
    fn common_prefix_len_counts_shared_top_bits() {
        assert_eq!(common_prefix_len_of::<u32>(0, 0), 32);
        assert_eq!(common_prefix_len_of::<u32>(u32::MAX, u32::MAX), 32);
        assert_eq!(common_prefix_len_of::<u32>(0, 1 << 31), 0);
        assert_eq!(common_prefix_len_of::<u32>(0xFF00_0000, 0xFF80_0000), 8);
        assert_eq!(common_prefix_len_of::<u64>(0, 1), 63);
        // §3.2 adversarial floats: top 20 ordered bits shared.
        let a = 1.0f32.to_ordered();
        let b = f32::from_bits(0x3F80_0FFF).to_ordered();
        assert!(common_prefix_len_of::<u32>(a, b) >= 20);
    }

    #[test]
    fn prefix_extraction() {
        let bits = 0xABCD_1234u32;
        assert_eq!(prefix(bits, 0), 0);
        assert_eq!(prefix(bits, 4), 0xA);
        assert_eq!(prefix(bits, 16), 0xABCD);
        assert_eq!(prefix(bits, 32), bits);
        // Generic form agrees and extends to 64-bit.
        assert_eq!(prefix_of::<u32>(bits, 16), 0xABCD);
        assert_eq!(prefix_of::<u64>(0xABCD_0000_0000_0000u64, 16), 0xABCD);
        assert_eq!(prefix_of::<u64>(u64::MAX, 0), 0);
    }

    #[test]
    fn adversarial_floats_share_ordered_prefix() {
        // §3.2's example: floats with bits in [0x3F800000, 0x3F800FFF]
        // (≈ [1.0, 1.00049]) share their first 20 bits — and the
        // ordered mapping must preserve that.
        let a = 1.0f32.to_ordered();
        let b = f32::from_bits(0x3F80_0FFF).to_ordered();
        assert_eq!(prefix(a, 20), prefix(b, 20));
        assert_ne!(prefix(a, 32), prefix(b, 32));
    }
}
