//! GridSelect (§4): WarpSelect with a shared queue, parallel two-step
//! insertion, and a multi-block launch.
//!
//! The WarpSelect family streams elements past a maintained top-K
//! list. Each warp keeps its list sorted in fast memory; incoming
//! elements smaller than the current kth value are staged in a queue,
//! and when the queue fills, a bitonic sort + merge folds it into the
//! list. GridSelect's three changes over Faiss's WarpSelect /
//! BlockSelect:
//!
//! 1. **Shared queue** — one 32-entry queue per warp in shared memory
//!    instead of 32 per-thread register queues, so the expensive
//!    sort+merge happens only when the queue is *actually* full rather
//!    than whenever any single thread's queue fills (§4's skew
//!    problem). This also relieves register pressure.
//! 2. **Parallel two-step insertion** (Fig. 5) — a warp ballot gives
//!    every qualified lane a unique slot by prefix-popcount; lanes
//!    whose slot fits insert immediately, the queue is flushed, and
//!    the overflow lanes insert into the emptied queue.
//! 3. **Multi-block launch** — BlockSelect runs one thread block (one
//!    SM of the A100's 108); GridSelect spreads blocks across the
//!    device and merges per-block results with a tree of merge
//!    kernels, which is where its up-to-882× speedup at batch 1 comes
//!    from (§5.3).
//!
//! This module also exposes [`select_partial_core`], the shared
//! machinery that the WarpSelect and BlockSelect baselines instantiate
//! with per-thread queues and a single block.

use crate::bitonic::{bitonic_sort, merge_into_topk};
use crate::error::TopKError;
use crate::keys::{OrderedBits, RadixKey};
use crate::obs;
use crate::scratch::ScratchGuard;
use crate::traits::{check_args, check_batch, Category, TopKAlgorithm, TopKOutput, TypedOutput};
use gpu_sim::device::WARP_SIZE;
use gpu_sim::warp::{ballot, lane_rank, Lanes};
use gpu_sim::{
    Backend, BackendExt, BlockCtx, DeviceBuffer, DeviceScalar, Footprint, KernelContract,
    LaunchConfig,
};
use std::sync::atomic::Ordering::Relaxed;

/// Largest K the WarpSelect family supports (§2.2: limited by
/// shared-memory / register budget; 2048 in Faiss and here).
pub const MAX_K: usize = 2048;

/// Algorithm label used in errors raised by the shared warp-select
/// core functions, which serve several front-end algorithms.
const CORE_NAME: &str = "warp-select core";

/// Queueing strategy for the warp-select core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueKind {
    /// One shared queue per warp with two-step ballot insertion
    /// (GridSelect, §4).
    Shared {
        /// Queue capacity (32 in the paper, bounding shared-memory
        /// footprint).
        len: usize,
    },
    /// A private queue per thread; the warp flushes when *any*
    /// thread's queue fills (WarpSelect/BlockSelect, and the Fig. 11
    /// ablation).
    PerThread {
        /// Per-thread queue capacity.
        len: usize,
    },
}

/// Configuration for [`GridSelect`].
#[derive(Debug, Clone)]
pub struct GridSelectConfig {
    /// Warps per thread block (BlockSelect uses up to 4; so do we).
    pub warps_per_block: usize,
    /// Cap on thread blocks per problem. GridSelect's whole point is
    /// that this is large; set 1 to emulate BlockSelect's shape.
    pub max_blocks_per_problem: usize,
    /// Elements per thread per grid-stride chunk.
    pub items_per_thread: usize,
    /// Queue strategy (shared, or per-thread for the Fig. 11 ablation).
    pub queue: QueueKind,
}

impl Default for GridSelectConfig {
    fn default() -> Self {
        GridSelectConfig {
            warps_per_block: 4,
            max_blocks_per_problem: 256,
            items_per_thread: 32,
            queue: QueueKind::Shared { len: WARP_SIZE },
        }
    }
}

/// GridSelect (§4). Supports K ≤ 2048 and on-the-fly processing.
///
/// ```
/// use gpu_sim::{Gpu, DeviceSpec};
/// use topk_core::{GridSelect, TopKAlgorithm, verify_topk};
///
/// let mut gpu = Gpu::new(DeviceSpec::a100());
/// let data: Vec<f32> = (0..20_000).map(|i| ((i * 131) % 7919) as f32).collect();
/// let input = gpu.htod("scores", &data);
/// let out = GridSelect::default().select(&mut gpu, &input, 10);
/// verify_topk(&data, 10, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
///
/// // Or fuse selection with the computation that produces the values
/// // (the last argument declares which device buffers the producer
/// // reads — none here):
/// let out = GridSelect::default()
///     .select_on_the_fly(
///         &mut gpu,
///         20_000,
///         10,
///         |ctx, i| {
///             ctx.ops(1);
///             ((i * 131) % 7919) as f32
///         },
///         |c| c,
///     )
///     .unwrap();
/// verify_topk(&data, 10, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct GridSelect {
    cfg: GridSelectConfig,
}

impl Default for GridSelect {
    fn default() -> Self {
        GridSelect::new(GridSelectConfig::default())
    }
}

impl GridSelect {
    /// Create with explicit configuration.
    pub fn new(cfg: GridSelectConfig) -> Self {
        assert!(cfg.warps_per_block >= 1);
        assert!(cfg.items_per_thread >= 1);
        match cfg.queue {
            QueueKind::Shared { len } | QueueKind::PerThread { len } => {
                assert!(len.is_power_of_two(), "queue length must be a power of two")
            }
        }
        GridSelect { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GridSelectConfig {
        &self.cfg
    }

    /// On-the-fly selection (§4): select the K smallest of the `n`
    /// values produced by `producer(ctx, i)`, which is invoked inside
    /// the kernel — the values never need to exist in device memory.
    /// Use this to fuse selection with the computation that generates
    /// the scores (distances, model outputs, …).
    /// `declare_reads` names the device buffers the producer loads
    /// from (`|c| c.reads(&buf, Footprint::all())`), for the launch
    /// contract — only the caller knows what backs the computation.
    pub fn select_on_the_fly<P, D>(
        &self,
        gpu: &mut dyn Backend,
        n: usize,
        k: usize,
        producer: P,
        declare_reads: D,
    ) -> Result<TopKOutput, TopKError>
    where
        P: Fn(&mut BlockCtx<'_>, usize) -> f32 + Sync,
        D: Fn(KernelContract) -> KernelContract,
    {
        let mut outs = select_streaming_core(
            gpu,
            "gridselect_fused_kernel",
            n,
            1,
            k,
            &self.cfg,
            |ctx, _prob, i| producer(ctx, i),
            declare_reads,
        )?;
        outs.pop().ok_or_else(|| TopKError::UnsupportedShape {
            algorithm: self.name(),
            detail: "batch of one produced no output".into(),
        })
    }

    /// Solve a batch with a single launch set.
    pub fn run_batch(
        &self,
        gpu: &mut dyn Backend,
        inputs: &[DeviceBuffer<f32>],
        k: usize,
    ) -> Result<Vec<TopKOutput>, TopKError> {
        let n = check_batch(self, inputs)?;
        check_args(self, n, k)?;
        select_partial_core(gpu, "gridselect_kernel", inputs, k, &self.cfg)
    }

    /// Generic-key batched selection (`f32/u32/i32/f64/u64/i64`), like
    /// [`crate::AirTopK::run_batch_typed`]. Note that 64-bit keys
    /// double the shared-memory footprint of the per-warp lists, which
    /// costs occupancy.
    pub fn run_batch_typed<T>(
        &self,
        gpu: &mut dyn Backend,
        inputs: &[DeviceBuffer<T>],
        k: usize,
    ) -> Result<Vec<TypedOutput<T>>, TopKError>
    where
        T: RadixKey,
        T::Ordered: DeviceScalar,
    {
        let Some(first) = inputs.first() else {
            return Err(TopKError::UnsupportedShape {
                algorithm: self.name(),
                detail: "empty batch".into(),
            });
        };
        let n = first.len();
        if let Some(bad) = inputs.iter().find(|b| b.len() != n) {
            return Err(TopKError::UnsupportedShape {
                algorithm: self.name(),
                detail: format!(
                    "batched inputs must share one length, got {n} and {}",
                    bad.len()
                ),
            });
        }
        select_streaming_core_typed(
            gpu,
            "gridselect_kernel",
            n,
            inputs.len(),
            k,
            &self.cfg,
            |ctx, prob, i| ctx.ld(&inputs[prob], i),
            |c| inputs.iter().fold(c, |c, b| c.reads(b, Footprint::all())),
        )
    }

    /// Matrix-shaped batched selection (RAFT `matrix::select_k`
    /// parity): one contiguous `rows × cols` input, per-row top-K.
    pub fn run_matrix_typed<T>(
        &self,
        gpu: &mut dyn Backend,
        input: &crate::matrix::DeviceMatrix<T>,
        k: usize,
    ) -> Result<Vec<TypedOutput<T>>, TopKError>
    where
        T: RadixKey,
        T::Ordered: DeviceScalar,
    {
        let cols = input.cols();
        select_streaming_core_typed(
            gpu,
            "gridselect_kernel",
            cols,
            input.rows(),
            k,
            &self.cfg,
            |ctx, prob, i| ctx.ld(input.buffer(), prob * cols + i),
            |c| c.reads(input.buffer(), Footprint::all()),
        )
    }
}

impl TopKAlgorithm for GridSelect {
    fn name(&self) -> &'static str {
        "GridSelect"
    }

    fn category(&self) -> Category {
        Category::PartialSorting
    }

    fn max_k(&self) -> Option<usize> {
        Some(MAX_K)
    }

    fn try_select(
        &self,
        gpu: &mut dyn Backend,
        input: &DeviceBuffer<f32>,
        k: usize,
    ) -> Result<TopKOutput, TopKError> {
        let mut outs = self.run_batch(gpu, std::slice::from_ref(input), k)?;
        outs.pop().ok_or_else(|| TopKError::UnsupportedShape {
            algorithm: self.name(),
            detail: "batch of one produced no output".into(),
        })
    }

    fn try_select_batch(
        &self,
        gpu: &mut dyn Backend,
        inputs: &[DeviceBuffer<f32>],
        k: usize,
    ) -> Result<Vec<TopKOutput>, TopKError> {
        self.run_batch(gpu, inputs, k)
    }
}

/// One warp's maintained state: a sorted top-K list (padded to a power
/// of two with the `O::MAX` sentinel) plus its staging queue. Shared with the
/// on-the-fly [`crate::streaming::WarpSelector`] API.
pub(crate) struct WarpState<O: OrderedBits = u32> {
    pub(crate) list_keys: Vec<O>,
    pub(crate) list_idx: Vec<u32>,
    queue_keys: Vec<O>,
    queue_idx: Vec<u32>,
    /// Valid entries currently staged.
    queue_fill: usize,
    /// Per-thread fill counts (PerThread mode only).
    lane_fill: [usize; WARP_SIZE],
    /// Current kth-smallest ordered key (the insertion threshold).
    pub(crate) threshold: O,
    k: usize,
}

impl<O: OrderedBits> WarpState<O> {
    pub(crate) fn new(ctx: &mut BlockCtx<'_>, k: usize, queue_slots: usize) -> Self {
        let klen = k.next_power_of_two();
        let list_keys = {
            let mut v = ctx.shared_alloc::<O>(klen);
            v.fill(O::MAX);
            v
        };
        let list_idx = ctx.shared_alloc::<u32>(klen);
        let queue_keys = {
            let mut v = ctx.shared_alloc::<O>(queue_slots);
            v.fill(O::MAX);
            v
        };
        let queue_idx = ctx.shared_alloc::<u32>(queue_slots);
        WarpState {
            list_keys,
            list_idx,
            queue_keys,
            queue_idx,
            queue_fill: 0,
            lane_fill: [0; WARP_SIZE],
            threshold: O::MAX,
            k,
        }
    }

    /// Sort the staged queue and fold it into the top-K list; update
    /// the threshold. The expensive operation the queueing strategies
    /// try to call rarely.
    pub(crate) fn flush(&mut self, ctx: &mut BlockCtx<'_>) {
        if self.queue_fill == 0 {
            return;
        }
        // Observability hook: this sort+merge is the expensive event
        // the shared queue exists to make rare (§4) — count it.
        obs::counters()
            .gridselect_queue_merges
            .fetch_add(1, Relaxed);
        for slot in self.queue_fill..self.queue_keys.len() {
            self.queue_keys[slot] = O::MAX;
        }
        let mut ops = bitonic_sort(&mut self.queue_keys, &mut self.queue_idx, true);
        let q = self.queue_keys.len().min(self.list_keys.len());
        ops += merge_into_topk(
            &mut self.list_keys,
            &mut self.list_idx,
            &mut self.queue_keys[..q],
            &mut self.queue_idx[..q],
        );
        ctx.ops(ops);
        self.queue_fill = 0;
        self.lane_fill = [0; WARP_SIZE];
        self.threshold = self.list_keys[self.k - 1];
    }

    /// Flush for per-thread queue layout: sentinel-pad every lane's
    /// unfilled slots (they may hold stale keys from the previous
    /// in-place sort), then fold the whole staging area into the list.
    fn flush_per_thread(&mut self, ctx: &mut BlockCtx<'_>) {
        if self.lane_fill.iter().all(|&c| c == 0) {
            return;
        }
        let len = self.queue_keys.len() / WARP_SIZE;
        for lane in 0..WARP_SIZE {
            for s in self.lane_fill[lane]..len {
                self.queue_keys[lane * len + s] = O::MAX;
            }
        }
        self.queue_fill = self.queue_keys.len();
        self.flush(ctx);
    }

    /// Drain whatever is staged, respecting the queue layout.
    pub(crate) fn drain(&mut self, ctx: &mut BlockCtx<'_>, queue: QueueKind) {
        match queue {
            QueueKind::Shared { .. } => self.flush(ctx),
            QueueKind::PerThread { .. } => self.flush_per_thread(ctx),
        }
    }
}

/// The streaming warp-select core shared by GridSelect, WarpSelect and
/// BlockSelect. Launches one processing kernel (`name`) over
/// `batch × blocks_per_problem` blocks and, if more than one block per
/// problem was used, a tree of `gridselect_merge_kernel` launches.
pub fn select_partial_core(
    gpu: &mut dyn Backend,
    name: &str,
    inputs: &[DeviceBuffer<f32>],
    k: usize,
    cfg: &GridSelectConfig,
) -> Result<Vec<TopKOutput>, TopKError> {
    let Some(first) = inputs.first() else {
        return Err(TopKError::UnsupportedShape {
            algorithm: CORE_NAME,
            detail: "empty batch".into(),
        });
    };
    let n = first.len();
    if let Some(bad) = inputs.iter().find(|b| b.len() != n) {
        return Err(TopKError::UnsupportedShape {
            algorithm: CORE_NAME,
            detail: format!(
                "batched inputs must share one length, got {n} and {}",
                bad.len()
            ),
        });
    }
    select_streaming_core(
        gpu,
        name,
        n,
        inputs.len(),
        k,
        cfg,
        |ctx, prob, i| ctx.ld(&inputs[prob], i),
        |c| inputs.iter().fold(c, |c, b| c.reads(b, Footprint::all())),
    )
}

/// The fully general core: values come from a *producer* closure
/// instead of a device buffer — the §4 "process data on-the-fly"
/// capability as a production API. The producer is called once per
/// element index (lockstep within warps) and may do arbitrary metered
/// work, e.g. compute a query-to-vector distance; the produced value
/// never needs to exist in device memory.
#[allow(clippy::too_many_arguments)]
pub fn select_streaming_core<P, D>(
    gpu: &mut dyn Backend,
    name: &str,
    n: usize,
    batch: usize,
    k: usize,
    cfg: &GridSelectConfig,
    producer: P,
    declare_reads: D,
) -> Result<Vec<TopKOutput>, TopKError>
where
    P: Fn(&mut BlockCtx<'_>, usize, usize) -> f32 + Sync,
    D: Fn(KernelContract) -> KernelContract,
{
    Ok(
        select_streaming_core_typed(gpu, name, n, batch, k, cfg, producer, declare_reads)?
            .into_iter()
            .map(|(values, indices)| TopKOutput::new(values, indices))
            .collect(),
    )
}

/// Generic-key variant of [`select_streaming_core`]: the producer may
/// return any [`RadixKey`] type (`f32/u32/i32/f64/u64/i64`). 64-bit
/// keys double the per-warp shared-memory footprint, which the cost
/// model turns into lower occupancy — the same trade a real
/// implementation makes.
#[allow(clippy::too_many_arguments)]
pub fn select_streaming_core_typed<T, P, D>(
    gpu: &mut dyn Backend,
    name: &str,
    n: usize,
    batch: usize,
    k: usize,
    cfg: &GridSelectConfig,
    producer: P,
    declare_reads: D,
) -> Result<Vec<TypedOutput<T>>, TopKError>
where
    T: RadixKey,
    T::Ordered: DeviceScalar,
    P: Fn(&mut BlockCtx<'_>, usize, usize) -> T + Sync,
    D: Fn(KernelContract) -> KernelContract,
{
    if batch < 1 {
        return Err(TopKError::UnsupportedShape {
            algorithm: CORE_NAME,
            detail: "empty batch".into(),
        });
    }
    if let Some(e) = TopKError::check_k(CORE_NAME, n, k, Some(MAX_K)) {
        return Err(e);
    }
    let mut ws = ScratchGuard::new();
    let mut outs = ScratchGuard::new();
    let r = streaming_core_launches(
        gpu,
        &mut ws,
        &mut outs,
        name,
        n,
        batch,
        k,
        cfg,
        producer,
        declare_reads,
    );
    ws.release(gpu);
    if r.is_err() {
        outs.release(gpu);
    }
    r
}

/// Launch sequence behind [`select_streaming_core_typed`]; workspace
/// goes through `ws`, result buffers through `outs`, so the caller can
/// release either group on any exit path.
#[allow(clippy::too_many_arguments)]
fn streaming_core_launches<T, P, D>(
    gpu: &mut dyn Backend,
    ws: &mut ScratchGuard,
    outs: &mut ScratchGuard,
    name: &str,
    n: usize,
    batch: usize,
    k: usize,
    cfg: &GridSelectConfig,
    producer: P,
    declare_reads: D,
) -> Result<Vec<TypedOutput<T>>, TopKError>
where
    T: RadixKey,
    T::Ordered: DeviceScalar,
    P: Fn(&mut BlockCtx<'_>, usize, usize) -> T + Sync,
    D: Fn(KernelContract) -> KernelContract,
{
    let klen = k.next_power_of_two();
    let warps = cfg.warps_per_block;
    let block_dim = warps * WARP_SIZE;
    let chunk = block_dim * cfg.items_per_thread;
    // Each warp maintains a K-long list, so a warp's slice must be
    // substantially larger than K for the threshold to do any pruning
    // (a slice below K admits *every* element and the queue machinery
    // is pure overhead). Real implementations scale blocks down as K
    // grows for the same reason — which is also the §5.1 observation
    // that partial-sorting methods lose steam at large K.
    let k_cap = (n / (8 * k * warps)).max(1);
    let bpp = n
        .div_ceil(chunk)
        .min(k_cap)
        .clamp(1, cfg.max_blocks_per_problem.max(1));
    let grid = batch * bpp;

    // Per-block results: bpp sorted lists of klen entries per problem.
    let mut lists = bpp;
    let scratch_keys = ws.alloc::<T::Ordered>(gpu, "gs_scratch_keys", batch * bpp * klen)?;
    let scratch_idx = ws.alloc::<u32>(gpu, "gs_scratch_idx", batch * bpp * klen)?;
    let out_val: Vec<DeviceBuffer<T>> = (0..batch)
        .map(|_| outs.alloc::<T>(gpu, "gs_out_val", k))
        .collect::<Result<_, _>>()?;
    let out_idx: Vec<DeviceBuffer<u32>> = (0..batch)
        .map(|_| outs.alloc::<u32>(gpu, "gs_out_idx", k))
        .collect::<Result<_, _>>()?;

    let queue = cfg.queue;
    let ipt = cfg.items_per_thread;

    let queue_slots = match queue {
        QueueKind::Shared { len } => len,
        QueueKind::PerThread { len } => len * WARP_SIZE,
    };
    let entry_bytes = std::mem::size_of::<T::Ordered>() + 4;
    // Which problem's output a block writes is `block / bpp` — fixed
    // per buffer but not expressible per-entry, so the k-slot outputs
    // are declared block-coordinated rather than exclusive.
    let mut contract = declare_reads(KernelContract::new(name))
        .writes(&scratch_keys, Footprint::per_block(klen))
        .writes(&scratch_idx, Footprint::per_block(klen))
        .uses_shared_mem(warps * (klen + queue_slots) * entry_bytes);
    for p in 0..batch {
        contract = contract
            .writes_shared(&out_val[p], Footprint::fixed(0, k))
            .writes_shared(&out_idx[p], Footprint::fixed(0, k));
    }
    gpu.try_launch_checked(&contract, LaunchConfig::grid_1d(grid, block_dim), |ctx| {
        let prob = ctx.block_idx / bpp;
        let blk = ctx.block_idx % bpp;

        let queue_slots = match queue {
            QueueKind::Shared { len } => len,
            QueueKind::PerThread { len } => len * WARP_SIZE,
        };
        let mut states: Vec<WarpState<T::Ordered>> = (0..warps)
            .map(|_| WarpState::new(ctx, k, queue_slots))
            .collect();

        // Grid-stride over this problem's chunks.
        let mut chunk_start = blk * chunk;
        while chunk_start < n {
            for (w, st) in states.iter_mut().enumerate() {
                let warp_elems = WARP_SIZE * ipt;
                let wstart = chunk_start + w * warp_elems;
                let wend = (wstart + warp_elems).min(n);
                let mut g = wstart;
                while g < wend {
                    process_group(ctx, &producer, prob, g, wend, st, queue);
                    g += WARP_SIZE;
                }
            }
            chunk_start += bpp * chunk;
        }

        // Drain queues, merge the block's warps into warp 0's list.
        for st in states.iter_mut() {
            st.drain(ctx, queue);
        }
        let (head, rest) = states.split_at_mut(1);
        for st in rest.iter_mut() {
            let ops = merge_into_topk(
                &mut head[0].list_keys,
                &mut head[0].list_idx,
                &mut st.list_keys,
                &mut st.list_idx,
            );
            ctx.ops(ops);
            obs::counters().gridselect_list_merges.fetch_add(1, Relaxed);
        }

        if bpp == 1 {
            // Single block per problem (WarpSelect/BlockSelect shape):
            // write the final K directly.
            for i in 0..k {
                ctx.st(&out_val[prob], i, T::from_ordered(head[0].list_keys[i]));
                ctx.st(&out_idx[prob], i, head[0].list_idx[i]);
            }
        } else {
            let base = (prob * bpp + blk) * klen;
            for i in 0..klen {
                ctx.st(&scratch_keys, base + i, head[0].list_keys[i]);
                ctx.st(&scratch_idx, base + i, head[0].list_idx[i]);
            }
        }
    })?;

    // Tree-merge the per-block lists: each merge block folds up to
    // MERGE_FANIN lists into one, repeated until one list per problem
    // remains. log_8(256) = 3 extra launches at most.
    const MERGE_FANIN: usize = 8;
    // Surviving list `l` lives at scratch slot `l * stride`; merged
    // results stay in each group's *first input slot* rather than
    // compacting to the scratch prefix. Compaction would race: with
    // several merge blocks in one launch, group 0 still reads slot 1
    // (its second input) while group 1 writes its result there.
    // Leaving results in place keeps every block's reads and writes on
    // its own disjoint slot set, at the cost of a stride multiplier
    // per round.
    let mut stride = 1usize;
    while lists > 1 {
        let groups = lists.div_ceil(MERGE_FANIN);
        let cur = lists;
        let step = stride;
        let mut contract = KernelContract::new("gridselect_merge_kernel")
            .coordinates(&scratch_keys, Footprint::per_group(groups, bpp * klen))
            .coordinates(&scratch_idx, Footprint::per_group(groups, bpp * klen));
        for p in 0..batch {
            contract = contract
                .writes_shared(&out_val[p], Footprint::fixed(0, k))
                .writes_shared(&out_idx[p], Footprint::fixed(0, k));
        }
        gpu.try_launch_checked(
            &contract,
            LaunchConfig::grid_1d(batch * groups, 256),
            |ctx| {
                let prob = ctx.block_idx / groups;
                let gidx = ctx.block_idx % groups;
                let first = gidx * MERGE_FANIN;
                let last = (first + MERGE_FANIN).min(cur);
                let base0 = (prob * bpp + first * step) * klen;
                let mut keys: Vec<T::Ordered> = (0..klen)
                    .map(|i| ctx.ld(&scratch_keys, base0 + i))
                    .collect();
                let mut idx: Vec<u32> =
                    (0..klen).map(|i| ctx.ld(&scratch_idx, base0 + i)).collect();
                for l in first + 1..last {
                    let b = (prob * bpp + l * step) * klen;
                    let mut qk: Vec<T::Ordered> =
                        (0..klen).map(|i| ctx.ld(&scratch_keys, b + i)).collect();
                    let mut qi: Vec<u32> = (0..klen).map(|i| ctx.ld(&scratch_idx, b + i)).collect();
                    let ops = merge_into_topk(&mut keys, &mut idx, &mut qk, &mut qi);
                    ctx.ops(ops);
                    obs::counters().gridselect_list_merges.fetch_add(1, Relaxed);
                }
                if groups == 1 {
                    // Final round: emit the K results (the list is
                    // sorted ascending; slots beyond k are sentinels).
                    for i in 0..k {
                        ctx.st(&out_val[prob], i, T::from_ordered(keys[i]));
                        ctx.st(&out_idx[prob], i, idx[i]);
                    }
                } else {
                    // Write back to this group's own first slot (the
                    // list was fully read above, and no other block
                    // touches it this launch).
                    for i in 0..klen {
                        ctx.st(&scratch_keys, base0 + i, keys[i]);
                        ctx.st(&scratch_idx, base0 + i, idx[i]);
                    }
                }
            },
        )?;
        lists = groups;
        stride *= MERGE_FANIN;
    }

    Ok((0..batch)
        .map(|p| (out_val[p].clone(), out_idx[p].clone()))
        .collect())
}

/// Process one 32-element lockstep group for a warp.
fn process_group<T, P>(
    ctx: &mut BlockCtx<'_>,
    producer: &P,
    prob: usize,
    start: usize,
    end: usize,
    st: &mut WarpState<T::Ordered>,
    queue: QueueKind,
) where
    T: RadixKey,
    P: Fn(&mut BlockCtx<'_>, usize, usize) -> T + Sync,
{
    let mut keys: Lanes<T::Ordered> = [T::Ordered::MAX; WARP_SIZE];
    let mut idxs: Lanes<u32> = [0; WARP_SIZE];
    let mut preds: Lanes<bool> = [false; WARP_SIZE];
    for lane in 0..WARP_SIZE {
        let i = start + lane;
        if i < end {
            let v = producer(ctx, prob, i);
            let bits = v.to_ordered();
            keys[lane] = bits;
            idxs[lane] = i as u32;
            preds[lane] = bits < st.threshold;
        }
    }
    ctx.ops(2 * WARP_SIZE as u64);
    st.insert_group(ctx, &keys, &idxs, &preds, queue);
}

impl<O: OrderedBits> WarpState<O> {
    /// Stage one lockstep group of qualified lanes into the queue,
    /// flushing into the top-K list when full. `preds[lane]` marks the
    /// lanes carrying a qualified element; keys are ordered bits.
    pub(crate) fn insert_group(
        &mut self,
        ctx: &mut BlockCtx<'_>,
        keys: &Lanes<O>,
        idxs: &Lanes<u32>,
        preds: &Lanes<bool>,
        queue: QueueKind,
    ) {
        let st = self;
        match queue {
            QueueKind::Shared { len } => {
                // Parallel two-step insertion (Fig. 5).
                let mask = ballot(preds);
                let count = mask.count_ones() as usize;
                ctx.ops(WARP_SIZE as u64);
                if count == 0 {
                    return;
                }
                let base = st.queue_fill;
                // Step 1: lanes whose slot fits.
                for lane in 0..WARP_SIZE {
                    if preds[lane] {
                        let pos = base + lane_rank(mask, lane) as usize;
                        if pos < len {
                            st.queue_keys[pos] = keys[lane];
                            st.queue_idx[pos] = idxs[lane];
                        }
                    }
                }
                if base + count >= len {
                    st.queue_fill = len;
                    st.flush(ctx);
                    // Step 2: overflow lanes insert into the emptied
                    // queue.
                    for lane in 0..WARP_SIZE {
                        if preds[lane] {
                            let pos = base + lane_rank(mask, lane) as usize;
                            if pos >= len {
                                st.queue_keys[pos - len] = keys[lane];
                                st.queue_idx[pos - len] = idxs[lane];
                            }
                        }
                    }
                    st.queue_fill = base + count - len;
                } else {
                    st.queue_fill = base + count;
                }
            }
            QueueKind::PerThread { len } => {
                // Each lane appends to its private queue; a full queue
                // on *any* lane forces a whole-warp flush (WarpSelect's
                // weakness under skew, §4).
                let mut any_full = false;
                for lane in 0..WARP_SIZE {
                    if preds[lane] {
                        let slot = lane * len + st.lane_fill[lane];
                        st.queue_keys[slot] = keys[lane];
                        st.queue_idx[slot] = idxs[lane];
                        st.lane_fill[lane] += 1;
                        if st.lane_fill[lane] == len {
                            any_full = true;
                        }
                    }
                }
                ctx.ops(WARP_SIZE as u64);
                if any_full {
                    st.flush_per_thread(ctx);
                }
            }
        }
    }
}

#[cfg(test)]
#[path = "gridselect_tests.rs"]
mod tests;
