//! Bitonic sorting and merging networks.
//!
//! The partial-sorting top-K family (WarpSelect, BlockSelect, Bitonic
//! Top-K, GridSelect) is built on bitonic networks because they are
//! oblivious — the same compare-exchange pattern regardless of data —
//! and therefore fully parallel on lockstep warps. Their `O(log² n)`
//! depth is also why those algorithms slow down as K grows (§5.1,
//! Fig. 6).
//!
//! Every function returns the number of compare-exchange operations
//! performed so kernels can charge the cost model for the work a real
//! warp would execute.

/// Sort `(keys, payloads)` ascending (or descending) in place using a
/// full bitonic network. `keys.len()` must be a power of two.
/// Returns the number of compare-exchange operations.
pub fn bitonic_sort<K: Ord + Copy, P: Copy>(
    keys: &mut [K],
    payloads: &mut [P],
    ascending: bool,
) -> u64 {
    let n = keys.len();
    assert_eq!(n, payloads.len());
    assert!(
        n.is_power_of_two(),
        "bitonic network needs power-of-two size"
    );
    let mut ops = 0;
    let mut k = 2;
    while k <= n {
        // Build bitonic sequences of length k, then merge them.
        let mut j = k / 2;
        while j >= 1 {
            for i in 0..n {
                let l = i ^ j;
                if l > i {
                    // Direction alternates per k-sized region to build
                    // the bitonic sequence.
                    let up = (i & k) == 0;
                    let should_swap = if up == ascending {
                        keys[i] > keys[l]
                    } else {
                        keys[i] < keys[l]
                    };
                    if should_swap {
                        keys.swap(i, l);
                        payloads.swap(i, l);
                    }
                    ops += 1;
                }
            }
            j /= 2;
        }
        k *= 2;
    }
    ops
}

/// Merge an already-bitonic `(keys, payloads)` sequence into sorted
/// order (ascending or descending). Used after concatenating two
/// opposite-sorted runs. Returns compare-exchange count.
pub fn bitonic_merge<K: Ord + Copy, P: Copy>(
    keys: &mut [K],
    payloads: &mut [P],
    ascending: bool,
) -> u64 {
    let n = keys.len();
    assert_eq!(n, payloads.len());
    assert!(n.is_power_of_two());
    let mut ops = 0;
    let mut j = n / 2;
    while j >= 1 {
        for i in 0..n {
            let l = i ^ j;
            if l > i {
                let should_swap = if ascending {
                    keys[i] > keys[l]
                } else {
                    keys[i] < keys[l]
                };
                if should_swap {
                    keys.swap(i, l);
                    payloads.swap(i, l);
                }
                ops += 1;
            }
        }
        j /= 2;
    }
    ops
}

/// Merge a sorted-ascending top-K list with a sorted-ascending buffer
/// of new candidates, keeping the K smallest — the "merge queue into
/// results" step of the WarpSelect family (§4, and Faiss's
/// `warp_merge`). `list.len()` must be a power of two and
/// `queue.len() <= list.len()`.
///
/// The *result* is computed with an ordinary two-pointer merge (the
/// simulator only needs the right answer), but the returned
/// compare-exchange count is that of the network a real warp executes:
/// one pairwise exchange per queue slot plus a full bitonic merge of
/// the K-long list (`K/2 · log₂K` comparators). The queue contents are
/// consumed (left in unspecified order).
pub fn merge_into_topk<K: Ord + Copy, P: Copy>(
    list_keys: &mut [K],
    list_payloads: &mut [P],
    queue_keys: &mut [K],
    queue_payloads: &mut [P],
) -> u64 {
    let k = list_keys.len();
    let q = queue_keys.len();
    assert!(k.is_power_of_two(), "top-K list must be power-of-two long");
    assert!(q <= k, "queue longer than list");
    assert_eq!(k, list_payloads.len());
    assert_eq!(q, queue_payloads.len());

    let mut out_k: Vec<K> = Vec::with_capacity(k);
    let mut out_p: Vec<P> = Vec::with_capacity(k);
    let (mut i, mut j) = (0usize, 0usize);
    while out_k.len() < k {
        if j >= q || (i < k && list_keys[i] <= queue_keys[j]) {
            out_k.push(list_keys[i]);
            out_p.push(list_payloads[i]);
            i += 1;
        } else {
            out_k.push(queue_keys[j]);
            out_p.push(queue_payloads[j]);
            j += 1;
        }
    }
    list_keys.copy_from_slice(&out_k);
    list_payloads.copy_from_slice(&out_p);

    // Cost of the real network: q pairwise exchanges + one bitonic
    // merge pass over the K-long list (log2(k) rounds of k/2
    // comparators each).
    let log_k = k.trailing_zeros() as u64;
    q as u64 + (k as u64 / 2) * log_k
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn sorts_ascending_and_descending() {
        let data: Vec<u32> = vec![5, 3, 8, 1, 9, 2, 7, 0];
        let mut k = data.clone();
        let mut p = idx(8);
        let ops = bitonic_sort(&mut k, &mut p, true);
        assert_eq!(k, vec![0, 1, 2, 3, 5, 7, 8, 9]);
        // payload follows its key
        for (key, pi) in k.iter().zip(&p) {
            assert_eq!(data[*pi as usize], *key);
        }
        // n/2 * log^2 pattern: 8 elements -> 3 stages of 1+2+3 rounds = 6 rounds * 4 pairs
        assert_eq!(ops, 24);

        let mut k = data.clone();
        let mut p = idx(8);
        bitonic_sort(&mut k, &mut p, false);
        assert_eq!(k, vec![9, 8, 7, 5, 3, 2, 1, 0]);
    }

    #[test]
    fn sort_handles_duplicates_and_extremes() {
        let mut k = vec![u32::MAX, 0, 7, 7, 7, 0, u32::MAX, 1];
        let mut p = idx(8);
        bitonic_sort(&mut k, &mut p, true);
        assert_eq!(k, vec![0, 0, 1, 7, 7, 7, u32::MAX, u32::MAX]);
    }

    #[test]
    fn sort_single_element() {
        let mut k = vec![42u32];
        let mut p = vec![0u32];
        assert_eq!(bitonic_sort(&mut k, &mut p, true), 0);
        assert_eq!(k, vec![42]);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn sort_rejects_non_power_of_two() {
        let mut k = vec![1u32, 2, 3];
        let mut p = idx(3);
        bitonic_sort(&mut k, &mut p, true);
    }

    #[test]
    fn merge_sorts_bitonic_input() {
        // ascending run then descending run = bitonic
        let mut k = vec![1u32, 4, 6, 9, 8, 5, 3, 2];
        let mut p = idx(8);
        bitonic_merge(&mut k, &mut p, true);
        assert_eq!(k, vec![1, 2, 3, 4, 5, 6, 8, 9]);
    }

    #[test]
    fn merge_into_topk_keeps_smallest() {
        let mut lk = vec![2u32, 4, 6, 8];
        let mut lp = vec![0u32, 1, 2, 3];
        let mut qk = vec![1u32, 3, 5, 7];
        let mut qp = vec![10u32, 11, 12, 13];
        merge_into_topk(&mut lk, &mut lp, &mut qk, &mut qp);
        assert_eq!(lk, vec![1, 2, 3, 4]);
        assert_eq!(lp, vec![10, 0, 11, 1]);
    }

    #[test]
    fn merge_into_topk_smaller_queue() {
        let mut lk = vec![10u32, 20, 30, 40, 50, 60, 70, 80];
        let mut lp = idx(8);
        let mut qk = vec![5u32, 45];
        let mut qp = vec![100u32, 101];
        merge_into_topk(&mut lk, &mut lp, &mut qk, &mut qp);
        assert_eq!(lk, vec![5, 10, 20, 30, 40, 45, 50, 60]);
    }

    #[test]
    fn merge_into_topk_queue_all_larger_is_noop_on_list() {
        let mut lk = vec![1u32, 2, 3, 4];
        let mut lp = idx(4);
        let mut qk = vec![9u32, 9, 9, 9];
        let mut qp = vec![7u32; 4];
        merge_into_topk(&mut lk, &mut lp, &mut qk, &mut qp);
        assert_eq!(lk, vec![1, 2, 3, 4]);
        assert_eq!(lp, vec![0, 1, 2, 3]);
    }

    #[test]
    fn merge_into_topk_randomised_against_reference() {
        // Deterministic LCG so the test needs no external RNG.
        let mut state = 0x1234_5678u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for k_len in [4usize, 8, 32, 128] {
            for q_len in [1usize, 2, 4].into_iter().filter(|q| *q <= k_len) {
                let mut lk: Vec<u32> = (0..k_len).map(|_| next() % 1000).collect();
                lk.sort_unstable();
                let mut lp: Vec<u32> = idx(k_len);
                let mut qk: Vec<u32> = (0..q_len).map(|_| next() % 1000).collect();
                qk.sort_unstable();
                let mut qp: Vec<u32> = (0..q_len as u32).map(|x| x + 1000).collect();

                let mut expect: Vec<u32> = lk.iter().chain(qk.iter()).copied().collect();
                expect.sort_unstable();
                expect.truncate(k_len);

                merge_into_topk(&mut lk, &mut lp, &mut qk, &mut qp);
                assert_eq!(lk, expect, "k={k_len} q={q_len}");
            }
        }
    }

    mod properties {
        use super::super::*;
        use proptest::prelude::*;

        fn pow2_vec() -> impl Strategy<Value = Vec<u32>> {
            (1u32..=8).prop_flat_map(|log| prop::collection::vec(any::<u32>(), 1usize << log))
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            #[test]
            fn sort_matches_std_sort(mut keys in pow2_vec(), ascending in any::<bool>()) {
                let mut payload: Vec<u32> = (0..keys.len() as u32).collect();
                let original = keys.clone();
                bitonic_sort(&mut keys, &mut payload, ascending);
                let mut expect = original.clone();
                expect.sort_unstable();
                if !ascending {
                    expect.reverse();
                }
                prop_assert_eq!(&keys, &expect);
                // Payload permutation stays consistent with its key.
                for (key, p) in keys.iter().zip(&payload) {
                    prop_assert_eq!(original[*p as usize], *key);
                }
            }

            #[test]
            fn merge_into_topk_equals_sorted_truncation(
                mut list in pow2_vec(),
                mut queue in prop::collection::vec(any::<u32>(), 1..32),
            ) {
                list.sort_unstable();
                queue.sort_unstable();
                prop_assume!(queue.len() <= list.len());
                let mut lp: Vec<u32> = (0..list.len() as u32).collect();
                let mut qp: Vec<u32> = (0..queue.len() as u32).map(|x| x + 1000).collect();
                let mut expect: Vec<u32> =
                    list.iter().chain(queue.iter()).copied().collect();
                expect.sort_unstable();
                expect.truncate(list.len());
                merge_into_topk(&mut list, &mut lp, &mut queue, &mut qp);
                prop_assert_eq!(list, expect);
            }
        }
    }

    #[test]
    fn ops_scale_log_squared() {
        // n/2 * (log n)(log n + 1)/2 compare-exchanges for a full sort.
        for n in [2usize, 4, 8, 64, 256] {
            let mut k: Vec<u32> = (0..n as u32).rev().collect();
            let mut p = idx(n);
            let ops = bitonic_sort(&mut k, &mut p, true);
            let log = n.trailing_zeros() as u64;
            assert_eq!(ops, (n as u64 / 2) * log * (log + 1) / 2);
        }
    }
}
