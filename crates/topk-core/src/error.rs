//! Error type for fallible top-K selection.
//!
//! Library code reports failures through [`TopKError`] instead of
//! panicking, so a serving layer can keep a device alive after a bad
//! query: an invalid `k` or an over-subscribed launch is the *query's*
//! fault, not the process's.

use gpu_sim::SimError;
use std::fmt;

/// Why a top-K selection could not produce an output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopKError {
    /// `k` violates the algorithm's preconditions: zero, larger than
    /// the input, or beyond the algorithm's supported maximum.
    InvalidK {
        /// Algorithm that rejected the query.
        algorithm: &'static str,
        /// The offending `k`.
        k: usize,
        /// Input length the query was issued against.
        n: usize,
        /// The algorithm's `max_k` limit, when it has one.
        max_k: Option<usize>,
    },
    /// The input shape is outside what the algorithm can handle (empty
    /// batches, mismatched batch lengths, zero-length inputs).
    UnsupportedShape {
        /// Algorithm that rejected the query.
        algorithm: &'static str,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// Device memory exhausted while allocating workspace or outputs.
    DeviceOom {
        /// Bytes the failing allocation asked for.
        requested: usize,
        /// Bytes that were still available.
        available: usize,
    },
    /// Any other simulator fault (invalid launch configuration,
    /// shared-memory overflow, injected device faults, ...).
    Sim(SimError),
    /// The query's deadline passed before a result could be produced.
    /// Terminal: a serving layer stops retrying once this fires.
    DeadlineExceeded {
        /// The deadline the query was submitted with, µs of simulated
        /// time after submission.
        deadline_us: u64,
    },
    /// Every device in the pool was failed or quarantined and the
    /// degradation ladder had nowhere left to go.
    PoolExhausted {
        /// Service attempts made before giving up.
        attempts: u32,
    },
}

impl TopKError {
    /// Every error kind, in [`TopKError::kind`] spelling — the label
    /// space an observability layer pre-registers its per-kind error
    /// counters over, so a scrape sees all series at zero before the
    /// first failure.
    pub const KINDS: [&'static str; 7] = [
        "invalid_k",
        "unsupported_shape",
        "device_oom",
        "sim",
        "device_fault",
        "deadline_exceeded",
        "pool_exhausted",
    ];

    /// A stable snake_case label for the error's variant, suitable as a
    /// metric label value (`topk_engine_query_errors_total{kind=...}`).
    /// Simulator errors split into `device_fault` (retryable device
    /// trouble) and `sim` (caller mistakes such as invalid launches).
    pub fn kind(&self) -> &'static str {
        match self {
            TopKError::InvalidK { .. } => "invalid_k",
            TopKError::UnsupportedShape { .. } => "unsupported_shape",
            TopKError::DeviceOom { .. } => "device_oom",
            TopKError::Sim(e) if e.is_device_fault() => "device_fault",
            TopKError::Sim(_) => "sim",
            TopKError::DeadlineExceeded { .. } => "deadline_exceeded",
            TopKError::PoolExhausted { .. } => "pool_exhausted",
        }
    }

    /// Whether the error is a device fault a serving layer should
    /// retry or fail over — as opposed to a query mistake that would
    /// fail identically on any device, or a terminal serving verdict.
    pub fn is_device_fault(&self) -> bool {
        match self {
            TopKError::DeviceOom { .. } => true,
            TopKError::Sim(e) => e.is_device_fault(),
            _ => false,
        }
    }

    /// Build the `InvalidK` variant from an algorithm's own limits;
    /// returns `None` when `k` is acceptable.
    pub fn check_k(
        algorithm: &'static str,
        n: usize,
        k: usize,
        max_k: Option<usize>,
    ) -> Option<Self> {
        if k < 1 || k > n || max_k.is_some_and(|mk| k > mk) {
            Some(TopKError::InvalidK {
                algorithm,
                k,
                n,
                max_k,
            })
        } else {
            None
        }
    }
}

impl fmt::Display for TopKError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopKError::InvalidK {
                algorithm,
                k,
                n,
                max_k,
            } => {
                if *k < 1 {
                    write!(f, "{algorithm}: k must be >= 1")
                } else if k > n {
                    write!(f, "{algorithm}: k = {k} exceeds input length n = {n}")
                } else {
                    let mk = max_k.unwrap_or(usize::MAX);
                    write!(f, "{algorithm}: k = {k} exceeds supported max {mk}")
                }
            }
            TopKError::UnsupportedShape { algorithm, detail } => {
                write!(f, "{algorithm}: unsupported shape: {detail}")
            }
            TopKError::DeviceOom {
                requested,
                available,
            } => write!(
                f,
                "out of device memory: requested {requested} bytes, {available} available"
            ),
            TopKError::Sim(e) => write!(f, "{e}"),
            TopKError::DeadlineExceeded { deadline_us } => {
                write!(f, "deadline exceeded: {deadline_us} us budget exhausted")
            }
            TopKError::PoolExhausted { attempts } => {
                write!(f, "device pool exhausted after {attempts} service attempts")
            }
        }
    }
}

impl std::error::Error for TopKError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TopKError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for TopKError {
    /// Allocation failures become [`TopKError::DeviceOom`]; everything
    /// else is carried through as [`TopKError::Sim`].
    fn from(e: SimError) -> Self {
        match e {
            SimError::OutOfDeviceMemory {
                requested,
                available,
            } => TopKError::DeviceOom {
                requested,
                available,
            },
            other => TopKError::Sim(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_k_accepts_and_rejects() {
        assert!(TopKError::check_k("a", 10, 1, None).is_none());
        assert!(TopKError::check_k("a", 10, 10, None).is_none());
        assert!(TopKError::check_k("a", 10, 0, None).is_some());
        assert!(TopKError::check_k("a", 10, 11, None).is_some());
        assert!(TopKError::check_k("a", 10, 9, Some(8)).is_some());
        assert!(TopKError::check_k("a", 10, 8, Some(8)).is_none());
    }

    #[test]
    fn display_matches_historic_messages() {
        let zero = TopKError::check_k("alg", 10, 0, None).unwrap();
        assert!(zero.to_string().contains("k must be >= 1"));
        let big = TopKError::check_k("alg", 10, 11, None).unwrap();
        assert!(big.to_string().contains("exceeds input length"));
        let over = TopKError::check_k("alg", 100, 50, Some(16)).unwrap();
        assert!(over.to_string().contains("exceeds supported max 16"));
    }

    #[test]
    fn kind_labels_cover_every_variant() {
        let errs = [
            TopKError::check_k("a", 10, 0, None).unwrap(),
            TopKError::UnsupportedShape {
                algorithm: "a",
                detail: "x".into(),
            },
            TopKError::DeviceOom {
                requested: 1,
                available: 0,
            },
            TopKError::Sim(SimError::InvalidLaunch("y".into())),
            TopKError::Sim(SimError::DeviceHang { timeout_us: 1 }),
            TopKError::DeadlineExceeded { deadline_us: 500 },
            TopKError::PoolExhausted { attempts: 3 },
        ];
        let kinds: Vec<&str> = errs.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds, TopKError::KINDS);
    }

    #[test]
    fn device_fault_classification_drives_retry_policy() {
        // Retryable: the device, not the query, is at fault.
        assert!(TopKError::DeviceOom {
            requested: 1,
            available: 0
        }
        .is_device_fault());
        assert!(TopKError::Sim(SimError::TransientFault { kernel: "k".into() }).is_device_fault());
        assert!(TopKError::Sim(SimError::DeviceHang { timeout_us: 1 }).is_device_fault());
        // Not retryable: same failure anywhere.
        assert!(!TopKError::check_k("a", 10, 0, None)
            .unwrap()
            .is_device_fault());
        assert!(!TopKError::Sim(SimError::InvalidLaunch("bad".into())).is_device_fault());
        assert!(!TopKError::DeadlineExceeded { deadline_us: 1 }.is_device_fault());
        assert!(!TopKError::PoolExhausted { attempts: 1 }.is_device_fault());
    }

    #[test]
    fn sim_oom_maps_to_device_oom() {
        let e: TopKError = SimError::OutOfDeviceMemory {
            requested: 64,
            available: 8,
        }
        .into();
        assert_eq!(
            e,
            TopKError::DeviceOom {
                requested: 64,
                available: 8
            }
        );
        assert!(e.to_string().contains("out of device memory"));
        let e: TopKError = SimError::InvalidLaunch("too big".into()).into();
        assert!(matches!(e, TopKError::Sim(_)));
        assert!(e.to_string().contains("too big"));
    }
}
