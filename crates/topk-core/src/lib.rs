//! # topk-core — AIR Top-K and GridSelect
//!
//! The SC '23 paper's two contributed parallel top-K algorithms,
//! implemented as kernels on the [`gpu_sim`] substrate:
//!
//! * [`air::AirTopK`] — **A**daptive and **I**teration-fused **R**adix
//!   top-K (§3). One fused kernel per radix pass does the previous
//!   pass's filtering *and* this pass's histogram, the last finishing
//!   block computes the prefix sum and target digit on-device, so the
//!   host only launches 4 kernels and never synchronises. The adaptive
//!   strategy (§3.2) decides per pass whether candidates are worth
//!   buffering, and early stopping (§3.3) cuts the tail when every
//!   remaining candidate is a result.
//! * [`gridselect::GridSelect`] — WarpSelect evolved (§4): one shared
//!   queue per warp with ballot-based parallel two-step insertion, and
//!   a multi-block launch so the whole GPU participates.
//!
//! Plus the shared machinery: order-preserving radix key mappings
//! ([`keys`]), bitonic sorting networks ([`bitonic`]), the
//! [`TopKAlgorithm`](traits) interface, and a strict
//! correctness verifier ([`verify`]).
//!
//! The paper's problem statement (§2.1): given a list `L` of `N`
//! elements and `K ∈ [1, N]`, return value list `V` and index list `I`
//! of length `K` with `L[I[i]] = V[i]` and every returned value no
//! greater than every non-returned element. We select the *smallest* K,
//! as the paper does.

pub mod air;
pub mod bitonic;
pub mod bucketed;
pub mod dispatch;
pub mod error;
pub mod gridselect;
pub mod keys;
pub mod largest;
pub mod matrix;
pub mod obs;
pub mod radik;
pub mod recall;
pub mod rowwise;
pub mod scratch;
pub mod streaming;
pub mod traits;
pub mod tuner;
pub mod twostage;
pub mod unfused;
pub mod verify;

pub use air::{AirConfig, AirTopK};
pub use bucketed::BucketedTopK;
pub use dispatch::SelectK;
pub use error::TopKError;
pub use gridselect::{GridSelect, GridSelectConfig, QueueKind};
pub use keys::RadixKey;
pub use largest::{reference_largest, SelectLargest};
pub use matrix::DeviceMatrix;
pub use obs::{AlgoCounters, AlgoSnapshot};
pub use radik::{RadiK, RadiKConfig};
pub use recall::{
    expected_recall, measured_recall, plan_bucketed, plan_two_stage, BucketedPlan, TwoStagePlan,
};
pub use rowwise::{RowWiseConfig, RowWiseTopK, ROWWISE_MAX_K};
pub use scratch::ScratchGuard;
pub use streaming::{StreamingSelect, WarpSelector};
pub use traits::{check_args, check_batch, Category, TopKAlgorithm, TopKOutput, TypedOutput};
pub use tuner::{DistSketch, Plan, PlanKey, PlanTable, ProblemShape, TunedAlgo, Tuner};
pub use twostage::TwoStageTopK;
pub use unfused::UnfusedRadix;
pub use verify::{reference_topk, verify_topk, verify_topk_typed, VerifyError};
