//! Generalized two-stage approximate top-K ("A Faster Generalized
//! Two-Stage Approximate Top-K", PAPERS.md).
//!
//! Stage one cuts the input into `P` contiguous partitions and every
//! partition independently keeps its k′ smallest elements — `P`
//! blocks, no cross-block traffic, the same embarrassingly parallel
//! shape as [`crate::bucketed`]. Stage two then runs an *exact*
//! single-block top-K over the `P·k′ ≥ K` surviving candidates. The
//! exact reduce never drops a true top-K member that survived stage
//! one, so the stage-one survival probability *is* the recall —
//! priced by [`crate::recall::expected_recall`] — and at equal
//! partitioning the two-stage family strictly dominates bucketed
//! recall because it keeps `P·k′` candidates where bucketed keeps
//! exactly K. The price is a second (small) launch and the candidate
//! round-trip through device memory.
//!
//! Both stages reuse the [`crate::rowwise`] streaming-filter kernel
//! shape; stage two carries the stage-one *global* indices as payload
//! so the output indices point into the original input.

use crate::air::Rows;
use crate::error::TopKError;
use crate::keys::{OrderedBits, RadixKey};
use crate::obs;
use crate::recall::TwoStagePlan;
use crate::scratch::ScratchGuard;
use crate::traits::{check_args, check_batch, Category, TopKAlgorithm, TopKOutput};
use gpu_sim::{Backend, BackendExt, DeviceBuffer, Footprint, KernelContract, LaunchConfig};
use std::sync::atomic::Ordering::Relaxed;

/// The two-stage approximate selector (see module docs).
///
/// ```
/// use gpu_sim::{Gpu, DeviceSpec};
/// use topk_core::{TwoStageTopK, TopKAlgorithm};
///
/// let mut gpu = Gpu::new(DeviceSpec::a100());
/// let data: Vec<f32> = (0..65536).map(|i| ((i * 193) % 65536) as f32).collect();
/// let input = gpu.htod("scores", &data);
/// let out = TwoStageTopK::new(8, 24).select(&mut gpu, &input, 100);
/// assert_eq!(out.values.len(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct TwoStageTopK {
    /// Stage-one partition count `P`.
    partitions: usize,
    /// Candidates each partition keeps (k′).
    k_prime: usize,
    /// Threads per block.
    block_dim: usize,
}

impl Default for TwoStageTopK {
    fn default() -> Self {
        TwoStageTopK::new(8, 32)
    }
}

impl TwoStageTopK {
    /// Selector with `partitions` stage-one blocks each keeping
    /// `k_prime` candidates.
    pub fn new(partitions: usize, k_prime: usize) -> Self {
        assert!(partitions >= 1, "partitions must be >= 1");
        assert!(k_prime >= 1, "k_prime must be >= 1");
        TwoStageTopK {
            partitions,
            k_prime,
            block_dim: 256,
        }
    }

    /// The cheapest selector whose expected recall on i.i.d. inputs
    /// of this shape clears `target`.
    pub fn for_recall(n: usize, k: usize, target: f64) -> Self {
        let plan = crate::recall::plan_two_stage(n, k, target);
        TwoStageTopK::new(plan.partitions, plan.k_prime)
    }

    /// The partitioning this selector uses.
    pub fn plan(&self) -> TwoStagePlan {
        TwoStagePlan {
            partitions: self.partitions,
            k_prime: self.k_prime,
        }
    }

    /// Expected recall on i.i.d. inputs for a given K (exact in
    /// expectation, see [`crate::recall`]).
    pub fn expected_recall(&self, k: usize) -> f64 {
        self.plan().expected_recall(k)
    }

    /// Shared-memory bytes the larger of the two stages needs.
    pub fn shared_bytes_for<T: RadixKey>(&self, k: usize) -> usize {
        let cap = (2 * self.k_prime.max(k)).max(64);
        cap * (std::mem::size_of::<T::Ordered>() + 4)
    }

    /// Two launches over the whole batch: stage one is
    /// `batch · partitions` blocks filtering partitions down to k′
    /// candidates each, stage two is `batch` blocks exactly reducing
    /// the candidates; packed `batch × k` outputs.
    pub(crate) fn run_rows<T: RadixKey>(
        &self,
        gpu: &mut dyn Backend,
        inputs: Rows<'_, T>,
        k: usize,
    ) -> Result<(DeviceBuffer<T>, DeviceBuffer<u32>), TopKError> {
        let n = inputs.n();
        check_args(self, n, k)?;
        let (parts, kp) = (self.partitions, self.k_prime);
        if parts * kp < k {
            return Err(TopKError::UnsupportedShape {
                algorithm: self.name(),
                detail: format!("{parts} partitions x {kp} candidates cannot yield K={k}"),
            });
        }
        if n / parts < kp {
            return Err(TopKError::UnsupportedShape {
                algorithm: self.name(),
                detail: format!(
                    "{parts} partitions of {n} elements cannot each yield {kp} candidates"
                ),
            });
        }
        let shared_needed = self.shared_bytes_for::<T>(k);
        if shared_needed > gpu.spec().shared_mem_per_block {
            return Err(TopKError::UnsupportedShape {
                algorithm: self.name(),
                detail: format!(
                    "candidate buffer needs {shared_needed} shared bytes, device offers {}",
                    gpu.spec().shared_mem_per_block
                ),
            });
        }
        let batch = inputs.batch();
        let m = parts * kp; // stage-two candidates per problem

        type Buffers<T> = (
            DeviceBuffer<T>,
            DeviceBuffer<u32>,
            DeviceBuffer<T>,
            DeviceBuffer<u32>,
        );
        let mut tmps = ScratchGuard::new();
        let mut outs = ScratchGuard::new();
        let alloc_all = |gpu: &mut dyn Backend,
                         tmps: &mut ScratchGuard,
                         outs: &mut ScratchGuard|
         -> Result<Buffers<T>, TopKError> {
            let cand_val = tmps.alloc::<T>(gpu, "twostage_cand_val", batch * m)?;
            let cand_idx = tmps.alloc::<u32>(gpu, "twostage_cand_idx", batch * m)?;
            let out_val = outs.alloc::<T>(gpu, "twostage_out_val", batch * k)?;
            let out_idx = outs.alloc::<u32>(gpu, "twostage_out_idx", batch * k)?;
            Ok((cand_val, cand_idx, out_val, out_idx))
        };
        let (cand_val, cand_idx, out_val, out_idx) = match alloc_all(gpu, &mut tmps, &mut outs) {
            Ok(bufs) => bufs,
            Err(e) => {
                tmps.release(gpu);
                outs.release(gpu);
                return Err(e);
            }
        };

        // Stage 1: every partition keeps its k' smallest, with global
        // indices, packed (row * parts + part) * kp into the
        // candidate buffers.
        let cap1 = (2 * kp).max(64);
        let (cv, ci) = (cand_val.clone(), cand_idx.clone());
        // Block (row * parts + part) owns candidate slots
        // [block * k', block * k' + k') — exactly a per-block tile.
        let contract = inputs
            .declare_reads(KernelContract::new("twostage_partition_kernel"))
            .writes(&cv, Footprint::per_block(kp))
            .writes(&ci, Footprint::per_block(kp))
            .uses_shared_mem(cap1 * (std::mem::size_of::<T::Ordered>() + 4));
        let stage1 = gpu.try_launch_checked(
            &contract,
            LaunchConfig::grid_1d(batch * parts, self.block_dim),
            move |ctx| {
                let row = ctx.block_idx / parts;
                let part = ctx.block_idx % parts;
                let lo = part * n / parts;
                let hi = (part + 1) * n / parts;
                let mut cand_bits = ctx.shared_alloc::<T::Ordered>(cap1);
                let mut cand_pos = ctx.shared_alloc::<u32>(cap1);
                let mut len = 0usize;
                let mut thr = T::Ordered::MAX;
                let mut have_thr = false;

                let compact = |ctx: &mut gpu_sim::BlockCtx,
                               bits: &mut [T::Ordered],
                               idx: &mut [u32],
                               len: usize|
                 -> T::Ordered {
                    let mut pairs: Vec<(T::Ordered, u32)> =
                        (0..len).map(|i| (bits[i], idx[i])).collect();
                    pairs.select_nth_unstable(kp - 1);
                    for (i, (b, x)) in pairs.iter().take(kp).enumerate() {
                        bits[i] = *b;
                        idx[i] = *x;
                    }
                    ctx.ops(2 * len as u64);
                    pairs[kp - 1].0
                };

                for i in lo..hi {
                    let bits = inputs.ld(ctx, row, i).to_ordered();
                    ctx.ops(2);
                    if !have_thr || bits < thr {
                        cand_bits[len] = bits;
                        cand_pos[len] = i as u32;
                        len += 1;
                        ctx.ops(1);
                        if len == cap1 {
                            thr = compact(ctx, &mut cand_bits, &mut cand_pos, len);
                            len = kp;
                            have_thr = true;
                        }
                    }
                }
                if len > kp {
                    compact(ctx, &mut cand_bits, &mut cand_pos, len);
                    len = kp;
                }
                debug_assert_eq!(len, kp, "partition covers >= k' elements");
                let base = (row * parts + part) * kp;
                for j in 0..kp {
                    ctx.st(&cv, base + j, T::from_ordered(cand_bits[j]));
                    ctx.st(&ci, base + j, cand_pos[j]);
                }
            },
        );
        if let Err(e) = stage1 {
            tmps.release(gpu);
            outs.release(gpu);
            return Err(e.into());
        }

        // Stage 2: one block per problem exactly reduces the m
        // candidates to K, carrying the stage-one global indices.
        let cap2 = (2 * k).max(64);
        let (cv, ci) = (cand_val.clone(), cand_idx.clone());
        let (ov, oi) = (out_val.clone(), out_idx.clone());
        let contract = KernelContract::new("twostage_reduce_kernel")
            .reads(&cv, Footprint::per_block(m))
            .reads(&ci, Footprint::per_block(m))
            .writes(&ov, Footprint::per_block(k))
            .writes(&oi, Footprint::per_block(k))
            .uses_shared_mem(cap2 * (std::mem::size_of::<T::Ordered>() + 4));
        let stage2 = gpu.try_launch_checked(
            &contract,
            LaunchConfig::grid_1d(batch, self.block_dim),
            move |ctx| {
                let row = ctx.block_idx;
                let mut cand_bits = ctx.shared_alloc::<T::Ordered>(cap2);
                let mut cand_pos = ctx.shared_alloc::<u32>(cap2);
                let mut len = 0usize;
                let mut thr = T::Ordered::MAX;
                let mut have_thr = false;

                let compact = |ctx: &mut gpu_sim::BlockCtx,
                               bits: &mut [T::Ordered],
                               idx: &mut [u32],
                               len: usize|
                 -> T::Ordered {
                    let mut pairs: Vec<(T::Ordered, u32)> =
                        (0..len).map(|i| (bits[i], idx[i])).collect();
                    pairs.select_nth_unstable(k - 1);
                    for (i, (b, x)) in pairs.iter().take(k).enumerate() {
                        bits[i] = *b;
                        idx[i] = *x;
                    }
                    ctx.ops(2 * len as u64);
                    pairs[k - 1].0
                };

                for i in 0..m {
                    let bits = ctx.ld(&cv, row * m + i).to_ordered();
                    let pos = ctx.ld(&ci, row * m + i);
                    ctx.ops(2);
                    if !have_thr || bits < thr {
                        cand_bits[len] = bits;
                        cand_pos[len] = pos;
                        len += 1;
                        ctx.ops(1);
                        if len == cap2 {
                            thr = compact(ctx, &mut cand_bits, &mut cand_pos, len);
                            len = k;
                            have_thr = true;
                        }
                    }
                }
                if len > k {
                    compact(ctx, &mut cand_bits, &mut cand_pos, len);
                    len = k;
                }
                debug_assert_eq!(len, k, "m >= k guarantees a full result");
                for j in 0..k {
                    ctx.st(&ov, row * k + j, T::from_ordered(cand_bits[j]));
                    ctx.st(&oi, row * k + j, cand_pos[j]);
                }
            },
        );
        // Drop the launch report borrow before touching the device
        // again.
        let stage2 = stage2.map(|_| ());
        tmps.release(gpu);
        if let Err(e) = stage2 {
            outs.release(gpu);
            return Err(e.into());
        }
        obs::counters().twostage_reduces.fetch_add(1, Relaxed);
        Ok((out_val, out_idx))
    }
}

impl TopKAlgorithm for TwoStageTopK {
    fn name(&self) -> &'static str {
        "Two-Stage Top-K (approx)"
    }

    fn category(&self) -> Category {
        Category::PartitionBased
    }

    fn try_select(
        &self,
        gpu: &mut dyn Backend,
        input: &DeviceBuffer<f32>,
        k: usize,
    ) -> Result<TopKOutput, TopKError> {
        let (v, i) = self.run_rows(gpu, Rows::Slices(std::slice::from_ref(input)), k)?;
        Ok(TopKOutput::new(v, i))
    }

    fn try_select_batch(
        &self,
        gpu: &mut dyn Backend,
        inputs: &[DeviceBuffer<f32>],
        k: usize,
    ) -> Result<Vec<TopKOutput>, TopKError> {
        let n = check_batch(self, inputs)?;
        check_args(self, n, k)?;
        let batch = inputs.len();
        let (out_val, out_idx) = self.run_rows(gpu, Rows::Slices(inputs), k)?;
        Ok((0..batch)
            .map(|p| {
                TopKOutput::new(
                    crate::air::slice_buffer(&out_val, p * k, k, "twostage_values"),
                    crate::air::slice_buffer(&out_idx, p * k, k, "twostage_indices"),
                )
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recall::measured_recall;
    use crate::verify::verify_topk;
    use datagen::Distribution;
    use gpu_sim::{DeviceSpec, Gpu};

    #[test]
    fn outputs_are_real_input_elements() {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let data = datagen::generate(Distribution::Normal, 1 << 15, 3);
        let input = gpu.htod("in", &data);
        let out = TwoStageTopK::new(8, 20).select(&mut gpu, &input, 100);
        assert_eq!(out.k, 100);
        let vals = out.values.to_vec();
        let idxs = out.indices.to_vec();
        for (v, i) in vals.iter().zip(&idxs) {
            assert_eq!(data[*i as usize], *v, "index {i} does not hold {v}");
        }
        let uniq: std::collections::HashSet<u32> = idxs.iter().copied().collect();
        assert_eq!(uniq.len(), 100);
    }

    #[test]
    fn generous_k_prime_is_exact() {
        // k' = k per partition can never lose a true member.
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let data = datagen::generate(Distribution::Uniform, 1 << 14, 7);
        let input = gpu.htod("in", &data);
        let alg = TwoStageTopK::new(4, 64);
        assert_eq!(alg.expected_recall(64), 1.0);
        let out = alg.select(&mut gpu, &input, 64);
        verify_topk(&data, 64, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
    }

    #[test]
    fn batch_is_two_launches_and_recall_tracks_the_model() {
        let (n, k, batch) = (1 << 15, 128, 6);
        let alg = TwoStageTopK::for_recall(n, k, 0.95);
        let expected = alg.expected_recall(k);
        assert!(expected >= 0.95);
        let datas: Vec<Vec<f32>> = (0..batch)
            .map(|i| datagen::generate(Distribution::Normal, n, 200 + i as u64))
            .collect();
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let inputs: Vec<_> = datas
            .iter()
            .enumerate()
            .map(|(i, d)| gpu.htod(&format!("p{i}"), d))
            .collect();
        gpu.reset_profile();
        let outs = alg.select_batch(&mut gpu, &inputs, k);
        assert_eq!(gpu.timeline().kernel_count(), 2, "two launches total");
        let mean: f64 = datas
            .iter()
            .zip(&outs)
            .map(|(d, o)| measured_recall(d, k, &o.values.to_vec()))
            .sum::<f64>()
            / batch as f64;
        assert!(
            mean >= expected - 0.05,
            "measured {mean:.3} vs expected {expected:.3}"
        );
    }

    #[test]
    fn dominates_bucketed_recall_at_equal_partitioning() {
        let (n, k) = (1 << 15, 128);
        let mut ts_mean = 0.0;
        let mut b_mean = 0.0;
        let trials = 8;
        for t in 0..trials {
            let data = datagen::generate(Distribution::Uniform, n, 400 + t);
            let mut gpu = Gpu::new(DeviceSpec::a100());
            let input = gpu.htod("in", &data);
            let ts = TwoStageTopK::new(16, 8).select(&mut gpu, &input, k);
            let b = crate::BucketedTopK::new(8).select(&mut gpu, &input, k);
            ts_mean += measured_recall(&data, k, &ts.values.to_vec());
            b_mean += measured_recall(&data, k, &b.values.to_vec());
        }
        ts_mean /= trials as f64;
        b_mean /= trials as f64;
        assert!(
            ts_mean >= b_mean - 0.02,
            "two-stage {ts_mean:.3} vs bucketed {b_mean:.3}"
        );
    }

    #[test]
    fn rejects_underfed_reduces_and_starved_partitions() {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let data: Vec<f32> = (0..4096).map(|i| i as f32).collect();
        let input = gpu.htod("in", &data);
        // 4 x 8 = 32 candidates cannot yield K = 100.
        let err = TwoStageTopK::new(4, 8)
            .try_select(&mut gpu, &input, 100)
            .unwrap_err();
        assert!(matches!(err, TopKError::UnsupportedShape { .. }), "{err}");
        // 64 partitions of 4096 elements are 64 long — cannot keep 100.
        let err = TwoStageTopK::new(64, 100)
            .try_select(&mut gpu, &input, 100)
            .unwrap_err();
        assert!(matches!(err, TopKError::UnsupportedShape { .. }), "{err}");
    }

    #[test]
    fn reduce_counter_moves() {
        let before = obs::counters().snapshot();
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let data = datagen::generate(Distribution::Uniform, 1 << 14, 5);
        let input = gpu.htod("in", &data);
        let _ = TwoStageTopK::new(4, 32).select(&mut gpu, &input, 64);
        let d = obs::counters().snapshot().delta_since(&before);
        assert!(d.twostage_reduces >= 1);
    }
}
