//! Row-major device matrices — the batched-selection interface RAFT
//! exposes (`raft::matrix::select_k` operates on a `batch × len`
//! matrix; the paper's open-sourced artifact lives in
//! `matrix/detail/select_radix.cuh`).
//!
//! A [`DeviceMatrix`] is one contiguous device buffer plus a shape, so
//! a batched selection reads rows with zero per-row allocations and
//! writes its `rows × k` outputs packed — how the real library works,
//! as opposed to the `&[DeviceBuffer]` convenience API.

use gpu_sim::{Backend, BackendExt, DeviceBuffer, DeviceScalar};

/// A row-major `rows × cols` matrix in device memory.
#[derive(Debug, Clone)]
pub struct DeviceMatrix<T: DeviceScalar> {
    buf: DeviceBuffer<T>,
    rows: usize,
    cols: usize,
}

impl<T: DeviceScalar> DeviceMatrix<T> {
    /// Wrap an existing buffer (must hold exactly `rows × cols`
    /// elements).
    pub fn from_buffer(buf: DeviceBuffer<T>, rows: usize, cols: usize) -> Self {
        assert_eq!(
            buf.len(),
            rows * cols,
            "buffer holds {} elements, shape wants {}",
            buf.len(),
            rows * cols
        );
        DeviceMatrix { buf, rows, cols }
    }

    /// Allocate a zeroed matrix on the device.
    pub fn zeroed(gpu: &mut dyn Backend, label: &str, rows: usize, cols: usize) -> Self {
        DeviceMatrix {
            buf: gpu.alloc::<T>(label, rows * cols),
            rows,
            cols,
        }
    }

    /// Upload host data (`rows × cols`, row-major) to a new matrix.
    pub fn htod(gpu: &mut dyn Backend, label: &str, data: &[T], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols);
        DeviceMatrix {
            buf: gpu.htod(label, data),
            rows,
            cols,
        }
    }

    /// Number of rows (problems).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (elements per problem).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The backing buffer (row-major).
    pub fn buffer(&self) -> &DeviceBuffer<T> {
        &self.buf
    }

    /// Copy one row to the host (unmetered; testing convenience).
    pub fn row_to_vec(&self, row: usize) -> Vec<T> {
        assert!(row < self.rows);
        (0..self.cols)
            .map(|c| self.buf.get(row * self.cols + c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceSpec, Gpu};

    #[test]
    fn shape_and_rows() {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let data: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let m = DeviceMatrix::htod(&mut gpu, "m", &data, 3, 4);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.row_to_vec(1), vec![4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "shape wants")]
    fn mismatched_shape_rejected() {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let buf = gpu.alloc::<f32>("b", 10);
        DeviceMatrix::from_buffer(buf, 3, 4);
    }

    #[test]
    fn air_matrix_selection_matches_slices() {
        use crate::air::AirTopK;
        use crate::verify::verify_topk;
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let rows = 5;
        let cols = 20_000; // above the one-block threshold
        let k = 64;
        let datas: Vec<Vec<f32>> = (0..rows)
            .map(|r| datagen::generate(datagen::Distribution::Normal, cols, r as u64))
            .collect();
        let flat: Vec<f32> = datas.iter().flatten().copied().collect();
        let m = DeviceMatrix::htod(&mut gpu, "m", &flat, rows, cols);

        gpu.reset_profile();
        let (vals, idxs) = AirTopK::default()
            .run_matrix_typed(&mut gpu, &m, k)
            .unwrap();
        assert_eq!(vals.rows(), rows);
        assert_eq!(vals.cols(), k);
        // One launch set for the whole matrix, no per-row loops.
        assert_eq!(gpu.timeline().kernel_count(), 4);
        for (r, d) in datas.iter().enumerate() {
            verify_topk(d, k, &vals.row_to_vec(r), &idxs.row_to_vec(r))
                .unwrap_or_else(|e| panic!("row {r}: {e}"));
        }
    }

    #[test]
    fn air_matrix_small_rows_take_one_block_path() {
        use crate::air::AirTopK;
        use crate::verify::verify_topk;
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let (rows, cols, k) = (7, 4096, 10);
        let datas: Vec<Vec<f32>> = (0..rows)
            .map(|r| datagen::generate(datagen::Distribution::Uniform, cols, 50 + r as u64))
            .collect();
        let flat: Vec<f32> = datas.iter().flatten().copied().collect();
        let m = DeviceMatrix::htod(&mut gpu, "m", &flat, rows, cols);
        gpu.reset_profile();
        let (vals, idxs) = AirTopK::default()
            .run_matrix_typed(&mut gpu, &m, k)
            .unwrap();
        assert_eq!(gpu.timeline().kernel_count(), 1, "one-block fast path");
        for (r, d) in datas.iter().enumerate() {
            verify_topk(d, k, &vals.row_to_vec(r), &idxs.row_to_vec(r)).unwrap();
        }
    }

    #[test]
    fn gridselect_matrix_selection() {
        use crate::gridselect::GridSelect;
        use crate::verify::verify_topk;
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let (rows, cols, k) = (4, 10_000, 17);
        let datas: Vec<Vec<f32>> = (0..rows)
            .map(|r| datagen::generate(datagen::Distribution::Uniform, cols, 90 + r as u64))
            .collect();
        let flat: Vec<f32> = datas.iter().flatten().copied().collect();
        let m = DeviceMatrix::htod(&mut gpu, "m", &flat, rows, cols);
        let outs = GridSelect::default()
            .run_matrix_typed(&mut gpu, &m, k)
            .unwrap();
        for ((d, (v, i)), r) in datas.iter().zip(&outs).zip(0..) {
            verify_topk(d, k, &v.to_vec(), &i.to_vec()).unwrap_or_else(|e| panic!("row {r}: {e}"));
        }
    }
}
