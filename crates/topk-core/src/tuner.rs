//! Workload-adaptive dispatch: a cost-model-guided autotuner.
//!
//! The static heuristics in [`crate::dispatch`] encode the paper's §5.1
//! guidance ("small k on large inputs → GridSelect, everything else →
//! AIR"), but they are blind to two dimensions that dominate real
//! serving workloads:
//!
//! * **value distribution** — AIR's MSD radix scan degenerates when the
//!   keys share a long ordered-bit prefix (every histogram collapses
//!   into one bucket, so a pass reads the whole input and eliminates
//!   nothing), while [`crate::radik::RadiK`] sketches the prefix away
//!   and [`crate::gridselect::GridSelect`] never looks at digits at all;
//! * **batch geometry** — many small rows amortise badly over
//!   multi-pass algorithms (launch overhead × passes) but map perfectly
//!   onto the fused one-launch [`crate::rowwise::RowWiseTopK`] path.
//!
//! This module closes the gap with a three-part design:
//!
//! 1. **Offline planner.** For a [`ProblemShape`] — `(n, k, batch)`
//!    plus a [`DistSketch`] of the value distribution — the planner
//!    enumerates every *viable* candidate configuration (algorithm ×
//!    digit width), predicts each one's launch sequence as
//!    [`gpu_sim::PlannedLaunch`]es, and prices them through the same
//!    analytic roofline the simulator itself uses
//!    ([`gpu_sim::sequence_cost`]). The winner is cached in a
//!    [`PlanTable`] keyed by a log₂-quantised [`PlanKey`], so one
//!    planning pass serves every shape in the same bucket.
//! 2. **Online refiner.** [`Tuner::observe`] feeds measured kernel
//!    latencies back in. Each algorithm family keeps an EMA calibration
//!    factor (observed / predicted); when recalibration flips the
//!    winner for a bucket the plan is replaced and
//!    `tuner_refinements` is bumped — mispredictions self-correct
//!    without a restart.
//! 3. **Persistence.** Plan tables serialise to a sorted, line-based
//!    text format ([`PlanTable::to_text`]) so a warmed table can be
//!    shipped with a deployment and reloaded at startup.
//!
//! The predictors intentionally reuse the *exact* launch geometry of
//! the real kernels (chunk sizes, pass counts, buffering thresholds,
//! shared-memory footprints) so that occupancy and launch-overhead
//! effects — which decide most races — are modelled faithfully. They
//! model 32-bit keys, the serving engine's element type.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Mutex;

use gpu_sim::{sequence_cost, DeviceSpec, KernelStats, PlannedLaunch};

use crate::air::ONE_BLOCK_THRESHOLD;
use crate::gridselect::MAX_K as GRID_MAX_K;
use crate::keys::{common_prefix_len_of, OrderedBits, RadixKey};
use crate::obs;
use crate::rowwise::ROWWISE_MAX_K;

/// Key width the predictors model (the engine serves `f32` keys).
const KEY_BITS: u32 = 32;
/// Bytes per key in the modelled element type.
const KEY_BYTES: u64 = 4;
/// Bytes per (key, index) pair in candidate buffers and outputs.
const PAIR_BYTES: u64 = 8;
/// One scattered access is charged a whole transaction sector.
const SECTOR_BYTES: u64 = 32;

// Launch geometry shared with `air.rs` / `radik.rs`.
const SWEEP_BLOCK: usize = 512;
const SWEEP_CHUNK: usize = 512 * 16;
const BUFFER_ALPHA: u64 = 128;

// Launch geometry shared with `gridselect.rs`.
const GRID_WARPS: usize = 4;
const GRID_BLOCK: usize = 128;
const GRID_CHUNK: usize = GRID_BLOCK * 32;
const GRID_MAX_BPP: usize = 256;
const GRID_QUEUE: usize = 32;
const MERGE_FANIN: usize = 8;

// Launch geometry shared with `rowwise.rs`.
const ROWWISE_BLOCK: usize = 256;
const ROWWISE_MIN_BUFFER: usize = 1024;

/// Largest row length at which the fused row-wise path is considered.
/// Beyond this a row no longer fits the "many small rows" regime the
/// kernel is designed for and the multi-pass algorithms catch up.
pub const ROWWISE_MAX_N: usize = 1 << 16;

/// A tiny, cheap-to-compute summary of a problem's value distribution.
///
/// The only statistic the radix algorithms care about is how many
/// leading *ordered* bits the whole input shares: those bits produce
/// fully degenerate histogram passes in AIR (one bucket, zero
/// elimination) and are exactly what RadiK's sketch pass skips. The
/// sketch stores that prefix length normalised to a 32-bit key space
/// so 64-bit key types quantise onto the same plan buckets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistSketch {
    /// Ordered-bit prefix shared by every key, scaled to 32-bit width.
    pub shared_prefix_bits: u32,
}

impl DistSketch {
    /// A sketch claiming no shared prefix (the uniform prior).
    pub fn uniform() -> Self {
        Self::default()
    }

    /// Build a sketch that claims `bits` shared leading bits.
    pub fn from_bits(bits: u32) -> Self {
        Self {
            shared_prefix_bits: bits.min(KEY_BITS),
        }
    }

    /// Compute the sketch of a host-side sample: the common ordered-bit
    /// prefix of the sample's min and max. `O(len)`, no allocation —
    /// cheap enough to run per query on a row sample.
    pub fn from_sample<T: RadixKey>(sample: &[T]) -> Self {
        let mut iter = sample.iter();
        let Some(first) = iter.next() else {
            return Self::uniform();
        };
        let mut mn = first.to_ordered();
        let mut mx = mn;
        for v in iter {
            let bits = v.to_ordered();
            if bits < mn {
                mn = bits;
            }
            if bits > mx {
                mx = bits;
            }
        }
        let prefix = common_prefix_len_of::<T::Ordered>(mn, mx);
        // Normalise to the 32-bit key space the predictors model.
        let scaled = (prefix as u64 * KEY_BITS as u64 / T::Ordered::BITS as u64) as u32;
        Self {
            shared_prefix_bits: scaled.min(KEY_BITS),
        }
    }

    /// Quantise the prefix length into one of four classes; plans are
    /// cached per class rather than per exact bit count.
    pub fn dist_class(&self) -> u8 {
        match self.shared_prefix_bits {
            0..=7 => 0,
            8..=15 => 1,
            16..=23 => 2,
            _ => 3,
        }
    }

    /// The prefix length the predictors assume for a class (a central
    /// value of the class's range).
    pub fn class_representative(class: u8) -> Self {
        let bits = match class {
            0 => 0,
            1 => 12,
            2 => 20,
            _ => 28,
        };
        Self::from_bits(bits)
    }
}

/// Everything the planner needs to know about one dispatch decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProblemShape {
    /// Elements per problem (row length).
    pub n: usize,
    /// Selection size.
    pub k: usize,
    /// Number of independent problems dispatched together.
    pub batch: usize,
    /// Distribution sketch of the values.
    pub sketch: DistSketch,
}

impl ProblemShape {
    /// A shape with the uniform (zero-knowledge) sketch.
    pub fn new(n: usize, k: usize, batch: usize) -> Self {
        Self {
            n,
            k,
            batch,
            sketch: DistSketch::uniform(),
        }
    }

    /// Attach a distribution sketch.
    pub fn with_sketch(mut self, sketch: DistSketch) -> Self {
        self.sketch = sketch;
        self
    }
}

/// Log₂-quantised plan-table key. Sizes are bucketed by *ceiling*
/// log₂, so a bucket's representative shape is the largest shape the
/// bucket contains — any algorithm viable for the representative is
/// viable for every shape that maps to the key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PlanKey {
    /// `ceil(log2(n))`.
    pub n_log2: u8,
    /// `ceil(log2(k))`.
    pub k_log2: u8,
    /// `ceil(log2(batch))`.
    pub batch_log2: u8,
    /// [`DistSketch::dist_class`].
    pub dist_class: u8,
}

fn ceil_log2(x: usize) -> u8 {
    let x = x.max(1);
    (usize::BITS - (x - 1).leading_zeros()) as u8
}

impl PlanKey {
    /// Quantise a shape.
    pub fn of(shape: &ProblemShape) -> Self {
        Self {
            n_log2: ceil_log2(shape.n),
            k_log2: ceil_log2(shape.k),
            batch_log2: ceil_log2(shape.batch),
            dist_class: shape.sketch.dist_class(),
        }
    }

    /// The bucket's representative shape: the largest member, with the
    /// class-central sketch. Predictions are made for this shape so the
    /// whole bucket shares one deterministic plan.
    pub fn representative(&self) -> ProblemShape {
        let n = 1usize << self.n_log2.min(62);
        let k = (1usize << self.k_log2.min(62)).min(n);
        let batch = 1usize << self.batch_log2.min(62);
        ProblemShape {
            n,
            k,
            batch,
            sketch: DistSketch::class_representative(self.dist_class),
        }
    }
}

/// One tuned configuration: an algorithm plus its tunable parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TunedAlgo {
    /// Multi-pass AIR Top-K with the given radix digit width.
    Air {
        /// Histogram digit width in bits.
        bits_per_pass: u32,
    },
    /// GridSelect (warp-queue partial sort + tree merge).
    Grid,
    /// Skew-resistant RadiK with the given radix digit width.
    RadiK {
        /// Histogram digit width in bits.
        bits_per_pass: u32,
    },
    /// Fused one-launch row-wise selection.
    RowWise,
    /// Approximate bucketed single-pass selection keeping `per_bucket`
    /// winners per contiguous bucket. Never enumerated by the
    /// exact-only [`Tuner::candidates`]; offered through
    /// [`Tuner::approx_candidates`] when the caller trades recall for
    /// latency.
    Bucketed {
        /// Winners kept per bucket (`c`).
        per_bucket: u32,
    },
    /// Approximate generalized two-stage selection: `partitions`
    /// blocks each keep `k_prime` candidates, one exact reduce
    /// finishes. Approx-only, like [`TunedAlgo::Bucketed`].
    TwoStage {
        /// Stage-one partition count.
        partitions: u32,
        /// Candidates each partition keeps (k′).
        k_prime: u32,
    },
}

impl TunedAlgo {
    /// The calibration family this configuration belongs to.
    pub fn family(&self) -> &'static str {
        match self {
            TunedAlgo::Air { .. } => "air",
            TunedAlgo::Grid => "grid",
            TunedAlgo::RadiK { .. } => "radik",
            TunedAlgo::RowWise => "rowwise",
            TunedAlgo::Bucketed { .. } => "bucketed",
            TunedAlgo::TwoStage { .. } => "twostage",
        }
    }

    /// Stable text label (`air:11`, `grid`, `radik:8`, `rowwise`,
    /// `bucketed:16`, `twostage:8x32`) used by the plan-table format
    /// and the bench baseline digest.
    pub fn encode(&self) -> String {
        match self {
            TunedAlgo::Air { bits_per_pass } => format!("air:{bits_per_pass}"),
            TunedAlgo::Grid => "grid".to_string(),
            TunedAlgo::RadiK { bits_per_pass } => format!("radik:{bits_per_pass}"),
            TunedAlgo::RowWise => "rowwise".to_string(),
            TunedAlgo::Bucketed { per_bucket } => format!("bucketed:{per_bucket}"),
            TunedAlgo::TwoStage {
                partitions,
                k_prime,
            } => format!("twostage:{partitions}x{k_prime}"),
        }
    }

    fn decode(text: &str) -> Option<Self> {
        match text {
            "grid" => return Some(TunedAlgo::Grid),
            "rowwise" => return Some(TunedAlgo::RowWise),
            _ => {}
        }
        let (family, params) = text.split_once(':')?;
        match family {
            "air" => Some(TunedAlgo::Air {
                bits_per_pass: params.parse().ok()?,
            }),
            "radik" => Some(TunedAlgo::RadiK {
                bits_per_pass: params.parse().ok()?,
            }),
            "bucketed" => Some(TunedAlgo::Bucketed {
                per_bucket: params.parse().ok()?,
            }),
            "twostage" => {
                let (p, kp) = params.split_once('x')?;
                Some(TunedAlgo::TwoStage {
                    partitions: p.parse().ok()?,
                    k_prime: kp.parse().ok()?,
                })
            }
            _ => None,
        }
    }
}

/// A cached planning decision for one [`PlanKey`] bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plan {
    /// The winning configuration.
    pub algo: TunedAlgo,
    /// Calibrated cost estimate at planning time (µs).
    pub predicted_us: f64,
    /// Uncalibrated analytic cost (µs); the refiner compares
    /// observations against this to keep calibration independent of
    /// its own feedback.
    pub raw_us: f64,
}

/// The persistent plan table: a sorted map from quantised shapes to
/// winning configurations.
#[derive(Debug, Clone, Default)]
pub struct PlanTable {
    entries: BTreeMap<PlanKey, Plan>,
}

const PLAN_TABLE_HEADER: &str = "# topk-tuner plan table v1";

impl PlanTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up the plan for a key.
    pub fn get(&self, key: &PlanKey) -> Option<&Plan> {
        self.entries.get(key)
    }

    /// Insert or replace a plan.
    pub fn insert(&mut self, key: PlanKey, plan: Plan) {
        self.entries.insert(key, plan);
    }

    /// Number of cached buckets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&PlanKey, &Plan)> {
        self.entries.iter()
    }

    /// Serialise to the line-based text format. Entries are emitted in
    /// key order with fixed-precision costs, so two tables with the
    /// same contents produce byte-identical text — the determinism
    /// tests and the CI baseline diff both rely on this.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(PLAN_TABLE_HEADER);
        out.push('\n');
        for (key, plan) in &self.entries {
            writeln!(
                out,
                "n={} k={} b={} d={} algo={} cost={:.3} raw={:.3}",
                key.n_log2,
                key.k_log2,
                key.batch_log2,
                key.dist_class,
                plan.algo.encode(),
                plan.predicted_us,
                plan.raw_us,
            )
            .expect("writing to String cannot fail");
        }
        out
    }

    /// Parse the text format produced by [`Self::to_text`].
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut table = Self::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = BTreeMap::new();
            for token in line.split_whitespace() {
                let (name, value) = token
                    .split_once('=')
                    .ok_or_else(|| format!("line {}: malformed token `{token}`", idx + 1))?;
                fields.insert(name, value);
            }
            let get = |name: &str| {
                fields
                    .get(name)
                    .copied()
                    .ok_or_else(|| format!("line {}: missing field `{name}`", idx + 1))
            };
            let parse_u8 = |name: &str| -> Result<u8, String> {
                get(name)?
                    .parse()
                    .map_err(|e| format!("line {}: field `{name}`: {e}", idx + 1))
            };
            let parse_f64 = |name: &str| -> Result<f64, String> {
                get(name)?
                    .parse()
                    .map_err(|e| format!("line {}: field `{name}`: {e}", idx + 1))
            };
            let key = PlanKey {
                n_log2: parse_u8("n")?,
                k_log2: parse_u8("k")?,
                batch_log2: parse_u8("b")?,
                dist_class: parse_u8("d")?,
            };
            let algo = TunedAlgo::decode(get("algo")?)
                .ok_or_else(|| format!("line {}: unknown algo", idx + 1))?;
            let plan = Plan {
                algo,
                predicted_us: parse_f64("cost")?,
                raw_us: parse_f64("raw")?,
            };
            table.insert(key, plan);
        }
        Ok(table)
    }

    /// Write the table to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Load a table from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_text(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// The cost-model-guided autotuner. See the module docs for the
/// overall design; thread-safe (`&self` everywhere) so one instance
/// can sit behind the engine's shared dispatcher.
#[derive(Debug, Default)]
pub struct Tuner {
    table: Mutex<PlanTable>,
    /// Per-family EMA of observed/raw-predicted latency.
    calibration: Mutex<BTreeMap<&'static str, f64>>,
}

/// EMA smoothing for calibration updates: `new = (1-β)·old + β·ratio`.
const CALIBRATION_BETA: f64 = 0.3;

impl Tuner {
    /// A tuner with an empty table and neutral calibration.
    pub fn new() -> Self {
        Self::default()
    }

    /// A tuner seeded with a previously saved plan table.
    pub fn with_table(table: PlanTable) -> Self {
        Self {
            table: Mutex::new(table),
            calibration: Mutex::new(BTreeMap::new()),
        }
    }

    /// Return the plan for a shape, planning (and caching) on miss.
    pub fn plan(&self, spec: &DeviceSpec, shape: &ProblemShape) -> Plan {
        let key = PlanKey::of(shape);
        if let Some(plan) = self.table.lock().unwrap().get(&key) {
            obs::counters().tuner_plan_hits.fetch_add(1, Relaxed);
            return *plan;
        }
        obs::counters().tuner_plan_misses.fetch_add(1, Relaxed);
        let plan = self.plan_uncached(spec, &key);
        self.table.lock().unwrap().insert(key, plan);
        plan
    }

    fn plan_uncached(&self, spec: &DeviceSpec, key: &PlanKey) -> Plan {
        let shape = key.representative();
        let calibration = self.calibration.lock().unwrap().clone();
        let mut best: Option<Plan> = None;
        for algo in Self::candidates(spec, &shape) {
            let Some(raw_us) = predict_raw_us(spec, &shape, algo) else {
                continue;
            };
            let factor = calibration.get(algo.family()).copied().unwrap_or(1.0);
            let predicted_us = raw_us * factor;
            let better = best.is_none_or(|b| predicted_us < b.predicted_us);
            if better {
                best = Some(Plan {
                    algo,
                    predicted_us,
                    raw_us,
                });
            }
        }
        best.expect("AIR is viable for every shape, so candidates is never empty")
    }

    /// Enumerate the configurations viable for a shape on a device.
    /// AIR (both digit widths) is always present; the others are gated
    /// by their structural limits so a plan can never pick an
    /// unsupported configuration.
    ///
    /// Deliberately **exact-only**: the approximate families never
    /// appear here, so default dispatch, cached plan tables and the
    /// committed bench baselines are untouched by their existence.
    /// Callers that can spend recall ask [`Self::approx_candidates`]
    /// explicitly.
    pub fn candidates(spec: &DeviceSpec, shape: &ProblemShape) -> Vec<TunedAlgo> {
        let mut out = vec![
            TunedAlgo::Air { bits_per_pass: 8 },
            TunedAlgo::Air { bits_per_pass: 11 },
        ];
        if shape.k <= GRID_MAX_K && shape.k < shape.n {
            out.push(TunedAlgo::Grid);
        }
        // Below the one-block threshold RadiK delegates to AIR, so it
        // is never a distinct candidate there.
        if shape.n > ONE_BLOCK_THRESHOLD && shape.k < shape.n {
            out.push(TunedAlgo::RadiK { bits_per_pass: 8 });
            out.push(TunedAlgo::RadiK { bits_per_pass: 11 });
        }
        if shape.k <= ROWWISE_MAX_K
            && shape.n <= ROWWISE_MAX_N
            && rowwise_shared_bytes(shape.k) <= spec.shared_mem_per_block as u64
        {
            out.push(TunedAlgo::RowWise);
        }
        out
    }

    /// The approximate configurations clearing `recall_target` on this
    /// shape, cheapest-parameter first per family (two-stage before
    /// bucketed: at equal partitioning it keeps more candidates, so it
    /// is the gentler rung). Parameters come from the analytic recall
    /// planners in [`crate::recall`]; configurations the device or
    /// shape cannot support are dropped. Empty for `recall_target >=
    /// 1.0` — approximation is strictly opt-in.
    pub fn approx_candidates(
        spec: &DeviceSpec,
        shape: &ProblemShape,
        recall_target: f64,
    ) -> Vec<TunedAlgo> {
        if recall_target >= 1.0 || shape.k == 0 || shape.k > shape.n {
            return Vec::new();
        }
        let mut out = Vec::new();
        let ts = crate::recall::plan_two_stage(shape.n, shape.k, recall_target);
        let algo = TunedAlgo::TwoStage {
            partitions: ts.partitions as u32,
            k_prime: ts.k_prime as u32,
        };
        // The planners fall back to their most faithful feasible
        // parameters when the shape cannot reach the target (e.g.
        // n < 2K caps k'); such plans are not offered.
        if ts.expected_recall(shape.k) >= recall_target
            && predict_raw_us(spec, shape, algo).is_some()
        {
            out.push(algo);
        }
        let b = crate::recall::plan_bucketed(shape.n, shape.k, recall_target);
        let algo = TunedAlgo::Bucketed {
            per_bucket: b.per_bucket as u32,
        };
        if b.expected_recall(shape.k) >= recall_target
            && predict_raw_us(spec, shape, algo).is_some()
        {
            out.push(algo);
        }
        out
    }

    /// Calibrated cost estimate for one configuration, or `None` if it
    /// is not viable on this device.
    pub fn predict_us(
        &self,
        spec: &DeviceSpec,
        shape: &ProblemShape,
        algo: TunedAlgo,
    ) -> Option<f64> {
        let raw = predict_raw_us(spec, shape, algo)?;
        let factor = self.calibration_factor(algo.family());
        Some(raw * factor)
    }

    /// Current EMA calibration factor for an algorithm family.
    pub fn calibration_factor(&self, family: &str) -> f64 {
        self.calibration
            .lock()
            .unwrap()
            .get(family)
            .copied()
            .unwrap_or(1.0)
    }

    /// Snapshot every family's EMA calibration factor, in family order.
    /// Families the refiner has never touched are absent (their
    /// implicit factor is 1.0).
    pub fn calibration_snapshot(&self) -> Vec<(&'static str, f64)> {
        self.calibration
            .lock()
            .unwrap()
            .iter()
            .map(|(family, factor)| (*family, *factor))
            .collect()
    }

    /// Counter-neutral table lookup: the cached plan for a shape's
    /// bucket, if one exists. Unlike [`Self::plan`] this neither plans
    /// on a miss nor touches the `tuner_plan_hits`/`tuner_plan_misses`
    /// observability counters, so a profiler can read the prediction a
    /// dispatch is about to use without perturbing the hit-rate it is
    /// trying to measure.
    pub fn peek(&self, shape: &ProblemShape) -> Option<Plan> {
        self.table.lock().unwrap().get(&PlanKey::of(shape)).copied()
    }

    /// Feed back an observed latency for a shape that was dispatched
    /// through [`Self::plan`]. Updates the winning family's calibration
    /// EMA and re-plans the bucket under the new calibration; if the
    /// winner changes, the plan is replaced and `tuner_refinements`
    /// is incremented.
    pub fn observe(&self, spec: &DeviceSpec, shape: &ProblemShape, observed_us: f64) {
        if !observed_us.is_finite() || observed_us <= 0.0 {
            return;
        }
        let key = PlanKey::of(shape);
        let current = match self.table.lock().unwrap().get(&key) {
            Some(plan) => *plan,
            None => return,
        };
        if current.raw_us <= 0.0 {
            return;
        }
        let ratio = observed_us / current.raw_us;
        {
            let mut calibration = self.calibration.lock().unwrap();
            let factor = calibration.entry(current.algo.family()).or_insert(1.0);
            *factor = (1.0 - CALIBRATION_BETA) * *factor + CALIBRATION_BETA * ratio;
        }
        let replanned = self.plan_uncached(spec, &key);
        if replanned.algo != current.algo {
            obs::counters().tuner_refinements.fetch_add(1, Relaxed);
        }
        self.table.lock().unwrap().insert(key, replanned);
    }

    /// Snapshot the plan table as text (see [`PlanTable::to_text`]).
    pub fn table_text(&self) -> String {
        self.table.lock().unwrap().to_text()
    }

    /// Replace the plan table with one parsed from text.
    pub fn load_table_text(&self, text: &str) -> Result<(), String> {
        let table = PlanTable::from_text(text)?;
        *self.table.lock().unwrap() = table;
        Ok(())
    }

    /// Number of cached plan buckets.
    pub fn table_len(&self) -> usize {
        self.table.lock().unwrap().len()
    }

    /// Save the plan table to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        self.table.lock().unwrap().save(path)
    }
}

// ---------------------------------------------------------------------------
// Analytic launch-sequence predictors
// ---------------------------------------------------------------------------

fn launch(grid_dim: usize, block_dim: usize, stats: KernelStats) -> PlannedLaunch {
    PlannedLaunch {
        grid_dim,
        block_dim,
        stats,
    }
}

fn empty_launch(grid_dim: usize, block_dim: usize) -> PlannedLaunch {
    launch(grid_dim, block_dim, KernelStats::default())
}

fn rowwise_shared_bytes(k: usize) -> u64 {
    let capacity = (2 * k).max(ROWWISE_MIN_BUFFER) as u64;
    capacity * PAIR_BYTES
}

fn predict_raw_us(spec: &DeviceSpec, shape: &ProblemShape, algo: TunedAlgo) -> Option<f64> {
    if shape.n == 0 || shape.k == 0 || shape.k > shape.n || shape.batch == 0 {
        return None;
    }
    let launches = match algo {
        TunedAlgo::Air { bits_per_pass } => predict_air(spec, shape, bits_per_pass)?,
        TunedAlgo::Grid => predict_grid(spec, shape)?,
        TunedAlgo::RadiK { bits_per_pass } => predict_radik(spec, shape, bits_per_pass)?,
        TunedAlgo::RowWise => predict_rowwise(spec, shape)?,
        TunedAlgo::Bucketed { per_bucket } => predict_bucketed(spec, shape, per_bucket)?,
        TunedAlgo::TwoStage {
            partitions,
            k_prime,
        } => predict_twostage(spec, shape, partitions, k_prime)?,
    };
    Some(sequence_cost(spec, &launches))
}

/// How many of a histogram window's bits actually discriminate between
/// keys, given that every key shares `prefix` leading bits. A window
/// wholly inside the shared prefix has zero effective bits: its
/// histogram collapses into a single bucket and eliminates nothing.
fn effective_window_bits(window_lo: u32, width: u32, prefix: u32) -> u32 {
    let hi = window_lo + width;
    hi.saturating_sub(window_lo.max(prefix)).min(width)
}

/// Shared model of one histogram sweep over `scanned` elements.
///
/// `src_pairs` marks whether the source is a buffered (key, index)
/// candidate list (8 B/element) or the raw input (4 B/element).
#[allow(clippy::too_many_arguments)]
fn sweep_launch(
    n: usize,
    batch: usize,
    scanned: u64,
    src_pairs: bool,
    survivors: u64,
    stored: bool,
    nonzero_buckets: u64,
    radix: u64,
) -> PlannedLaunch {
    let bpp = n.div_ceil(SWEEP_CHUNK);
    let grid = batch * bpp;
    let batch_u = batch as u64;
    let elem_bytes = if src_pairs { PAIR_BYTES } else { KEY_BYTES };
    let mut stats = KernelStats {
        bytes_read: scanned * elem_bytes * batch_u,
        shared_mem_bytes: radix * 4,
        compute_ops: (6 * scanned + 4 * survivors) * batch_u + grid as u64 * radix,
        // Histogram flush: each block publishes its non-zero buckets.
        atomic_ops: (bpp as u64 * nonzero_buckets + 1) * batch_u,
        ..KernelStats::default()
    };
    if stored {
        // Candidates scatter into the ping-pong buffer (key + index).
        stats.bytes_scattered = survivors * 2 * SECTOR_BYTES * batch_u;
        stats.atomic_ops += survivors * batch_u;
    }
    launch(grid, SWEEP_BLOCK, stats)
}

/// Terminal scan: re-reads the final candidate source and emits the k
/// selected (key, index) pairs.
fn terminal_launch(
    n: usize,
    k: usize,
    batch: usize,
    scanned: u64,
    src_pairs: bool,
) -> PlannedLaunch {
    let bpp = n.div_ceil(SWEEP_CHUNK);
    let grid = batch * bpp;
    let batch_u = batch as u64;
    let elem_bytes = if src_pairs { PAIR_BYTES } else { KEY_BYTES };
    launch(
        grid,
        SWEEP_BLOCK,
        KernelStats {
            bytes_read: scanned * elem_bytes * batch_u,
            bytes_scattered: k as u64 * 2 * SECTOR_BYTES * batch_u,
            atomic_ops: (k as u64 + 1) * batch_u,
            compute_ops: 4 * scanned * batch_u,
            ..KernelStats::default()
        },
    )
}

/// Model of a multi-pass MSD radix selection (AIR and the post-sketch
/// rounds of RadiK share this structure).
///
/// `windows` lists each pass's `(effective_bits, window_width)`. Pass
/// `p` scans the candidates surviving pass `p-1` — re-read from the
/// whole input unless the previous pass buffered them (`count·α < n`)
/// — then one terminal scan emits the winners. Remaining scheduled
/// launches (`total_launches` covers the fixed pass count plus the
/// final filter) execute as no-ops.
fn radix_cascade(
    shape: &ProblemShape,
    windows: &[(u32, u32)],
    radix_bits: u32,
    total_launches: usize,
    skew_spread: bool,
) -> Vec<PlannedLaunch> {
    let ProblemShape { n, k, batch, .. } = *shape;
    let radix = 1u64 << radix_bits;
    let bpp = n.div_ceil(SWEEP_CHUNK);
    let grid = batch * bpp;

    // Candidate count entering each pass (unclamped decay).
    let mut cand: Vec<u64> = Vec::with_capacity(windows.len() + 1);
    cand.push(n as u64);
    for &(eff, _) in windows {
        let cur = *cand.last().expect("cand starts non-empty");
        cand.push(if eff >= 63 { 0 } else { cur >> eff });
    }
    // First pass whose *input* is already within k: selection resolves
    // there (ties/early-stop), making it the terminal scan.
    let term = (1..=windows.len())
        .find(|&t| cand[t] <= k as u64)
        .unwrap_or(windows.len());

    // Whether pass p buffered its survivors (possible from pass 1 on).
    let clamped = |p: usize| cand[p].max(k as u64).min(n as u64);
    let stored = |p: usize| p >= 1 && clamped(p).saturating_mul(BUFFER_ALPHA) < n as u64;

    let mut launches = Vec::with_capacity(total_launches);
    for (p, &(eff, _width)) in windows.iter().enumerate().take(term) {
        let (scanned, src_pairs) = if p == 0 {
            (n as u64, false)
        } else if stored(p - 1) {
            (clamped(p - 1), true)
        } else {
            (n as u64, false)
        };
        let survivors = clamped(p);
        // Buckets actually touched: with a shared prefix only 2^eff
        // digits occur; under RadiK's sketch the histogram spreads over
        // the full window instead.
        let occupied = if skew_spread {
            radix.min(survivors)
        } else {
            (1u64 << eff.min(62)).min(radix).min(survivors)
        };
        launches.push(sweep_launch(
            n,
            batch,
            scanned,
            src_pairs,
            survivors,
            stored(p),
            occupied,
            radix,
        ));
    }
    let (scanned, src_pairs) = if term == 0 {
        (n as u64, false)
    } else if stored(term - 1) {
        (clamped(term - 1), true)
    } else {
        (n as u64, false)
    };
    launches.push(terminal_launch(n, k, batch, scanned, src_pairs));
    while launches.len() < total_launches {
        launches.push(empty_launch(grid, SWEEP_BLOCK));
    }
    launches
}

fn predict_air(
    spec: &DeviceSpec,
    shape: &ProblemShape,
    bits_per_pass: u32,
) -> Option<Vec<PlannedLaunch>> {
    if !(1..=16).contains(&bits_per_pass) {
        return None;
    }
    let ProblemShape {
        n,
        k,
        batch,
        sketch,
        ..
    } = *shape;
    let batch_u = batch as u64;
    if k == n {
        // Copy-all path: one sweep that rewrites the input as pairs.
        let bpp = n.div_ceil(SWEEP_CHUNK);
        return Some(vec![launch(
            batch * bpp,
            SWEEP_BLOCK,
            KernelStats {
                bytes_read: n as u64 * KEY_BYTES * batch_u,
                bytes_written: n as u64 * PAIR_BYTES * batch_u,
                compute_ops: 2 * n as u64 * batch_u,
                ..KernelStats::default()
            },
        )]);
    }
    if n <= ONE_BLOCK_THRESHOLD {
        // Single-block in-shared-memory selection, one launch per row.
        let shared = (n as u64 * PAIR_BYTES).max(1 << bits_per_pass);
        if shared > spec.shared_mem_per_block as u64 {
            return None;
        }
        return Some(vec![launch(
            batch,
            256,
            KernelStats {
                bytes_read: n as u64 * KEY_BYTES * batch_u,
                bytes_written: k as u64 * PAIR_BYTES * batch_u,
                compute_ops: 12 * n as u64 * batch_u,
                atomic_ops: batch_u,
                shared_mem_bytes: shared,
                ..KernelStats::default()
            },
        )]);
    }
    let prefix = sketch.shared_prefix_bits.min(KEY_BITS);
    let passes = KEY_BITS.div_ceil(bits_per_pass);
    let windows: Vec<(u32, u32)> = (0..passes)
        .map(|p| {
            let lo = p * bits_per_pass;
            let width = bits_per_pass.min(KEY_BITS - lo);
            (effective_window_bits(lo, width, prefix), width)
        })
        .collect();
    Some(radix_cascade(
        shape,
        &windows,
        bits_per_pass,
        passes as usize + 1,
        false,
    ))
}

fn predict_radik(
    spec: &DeviceSpec,
    shape: &ProblemShape,
    bits_per_pass: u32,
) -> Option<Vec<PlannedLaunch>> {
    if !(1..=16).contains(&bits_per_pass) {
        return None;
    }
    let ProblemShape {
        n,
        k,
        batch,
        sketch,
        ..
    } = *shape;
    if n <= ONE_BLOCK_THRESHOLD || k == n {
        // RadiK delegates these shapes to its inner AIR; not a distinct
        // configuration worth planning.
        return None;
    }
    let _ = spec;
    let batch_u = batch as u64;
    let bpp = n.div_ceil(SWEEP_CHUNK);
    let grid = batch * bpp;

    // Sketch pass: a full read plus a handful of per-block atomics.
    let sketch_launch = launch(
        grid,
        SWEEP_BLOCK,
        KernelStats {
            bytes_read: n as u64 * KEY_BYTES * batch_u,
            compute_ops: 3 * n as u64 * batch_u,
            atomic_ops: (3 * bpp as u64) * batch_u,
            shared_mem_bytes: 64,
            ..KernelStats::default()
        },
    );

    // Post-sketch rounds start past the shared prefix; every window bit
    // discriminates from there on.
    let prefix = sketch.shared_prefix_bits.min(KEY_BITS - 1);
    let scheduled_rounds = KEY_BITS.div_ceil(bits_per_pass);
    let mut windows: Vec<(u32, u32)> = Vec::new();
    let mut offset = prefix;
    while offset < KEY_BITS {
        let width = bits_per_pass.min(KEY_BITS - offset);
        windows.push((width, width));
        offset += width;
    }
    // `radix_cascade` appends the terminal scan and pads with no-op
    // launches up to the fixed schedule: sketch + rounds + last filter.
    let mut launches = vec![sketch_launch];
    launches.extend(radix_cascade(
        shape,
        &windows,
        bits_per_pass,
        scheduled_rounds as usize + 1,
        true,
    ));
    Some(launches)
}

fn predict_grid(spec: &DeviceSpec, shape: &ProblemShape) -> Option<Vec<PlannedLaunch>> {
    let ProblemShape { n, k, batch, .. } = *shape;
    if k > GRID_MAX_K || k >= n {
        return None;
    }
    let batch_u = batch as u64;
    let klen = k.next_power_of_two();
    let shared = (GRID_WARPS * (klen + GRID_QUEUE)) as u64 * PAIR_BYTES;
    if shared > spec.shared_mem_per_block as u64 {
        return None;
    }
    let k_cap = (n / (8 * k * GRID_WARPS)).max(1);
    let bpp = n.div_ceil(GRID_CHUNK).min(k_cap).clamp(1, GRID_MAX_BPP);
    let lists_bytes = klen as u64 * PAIR_BYTES;

    // Main pass: stream the input through per-warp sorted queues, then
    // write each block's k-list to scratch.
    let main = launch(
        batch * bpp,
        GRID_BLOCK,
        KernelStats {
            bytes_read: n as u64 * KEY_BYTES * batch_u,
            bytes_written: bpp as u64 * lists_bytes * batch_u,
            compute_ops: (6 * n as u64
                + (bpp * GRID_WARPS * 4 * klen) as u64 * (klen.trailing_zeros().max(1) as u64))
                * batch_u,
            atomic_ops: (bpp as u64) * batch_u,
            shared_mem_bytes: shared,
            ..KernelStats::default()
        },
    );
    let mut launches = vec![main];

    // Tree merge: fan-in 8 per round until one list per problem remains.
    let mut lists = bpp;
    while lists > 1 {
        let groups = lists.div_ceil(MERGE_FANIN);
        let merge_shared = (MERGE_FANIN as u64 * lists_bytes).min(spec.shared_mem_per_block as u64);
        launches.push(launch(
            batch * groups,
            256,
            KernelStats {
                bytes_read: lists as u64 * lists_bytes * batch_u,
                bytes_written: groups as u64 * lists_bytes * batch_u,
                compute_ops: 8 * lists as u64 * klen as u64 * batch_u,
                shared_mem_bytes: merge_shared,
                ..KernelStats::default()
            },
        ));
        lists = groups;
    }
    Some(launches)
}

fn predict_rowwise(spec: &DeviceSpec, shape: &ProblemShape) -> Option<Vec<PlannedLaunch>> {
    let ProblemShape { n, k, batch, .. } = *shape;
    if k > ROWWISE_MAX_K {
        return None;
    }
    let shared = rowwise_shared_bytes(k);
    if shared > spec.shared_mem_per_block as u64 {
        return None;
    }
    let batch_u = batch as u64;
    Some(vec![launch(
        batch,
        ROWWISE_BLOCK,
        KernelStats {
            bytes_read: n as u64 * KEY_BYTES * batch_u,
            bytes_written: k as u64 * PAIR_BYTES * batch_u,
            // Streaming admission (~2 ops/elem) plus amortised
            // compaction work.
            compute_ops: 4 * n as u64 * batch_u,
            shared_mem_bytes: shared,
            ..KernelStats::default()
        },
    )])
}

fn predict_bucketed(
    spec: &DeviceSpec,
    shape: &ProblemShape,
    per_bucket: u32,
) -> Option<Vec<PlannedLaunch>> {
    let ProblemShape { n, k, batch, .. } = *shape;
    let pb = (per_bucket as usize).min(k);
    if pb == 0 {
        return None;
    }
    let buckets = k.div_ceil(pb);
    if n / buckets < pb {
        return None;
    }
    let shared = (2 * pb).max(64) as u64 * (KEY_BYTES + 4);
    if shared > spec.shared_mem_per_block as u64 {
        return None;
    }
    let batch_u = batch as u64;
    // Same streaming-filter cost model as row-wise, but the read and
    // the admission work are spread over `buckets` blocks — that
    // parallelism is the entire point of the family.
    Some(vec![launch(
        batch * buckets,
        ROWWISE_BLOCK,
        KernelStats {
            bytes_read: n as u64 * KEY_BYTES * batch_u,
            bytes_written: k as u64 * PAIR_BYTES * batch_u,
            compute_ops: 4 * n as u64 * batch_u,
            shared_mem_bytes: shared,
            ..KernelStats::default()
        },
    )])
}

fn predict_twostage(
    spec: &DeviceSpec,
    shape: &ProblemShape,
    partitions: u32,
    k_prime: u32,
) -> Option<Vec<PlannedLaunch>> {
    let ProblemShape { n, k, batch, .. } = *shape;
    let (parts, kp) = (partitions as usize, k_prime as usize);
    if parts == 0 || kp == 0 || parts * kp < k || n / parts < kp {
        return None;
    }
    let shared1 = (2 * kp).max(64) as u64 * (KEY_BYTES + 4);
    let shared2 = (2 * k).max(64) as u64 * (KEY_BYTES + 4);
    if shared1.max(shared2) > spec.shared_mem_per_block as u64 {
        return None;
    }
    let batch_u = batch as u64;
    let m = (parts * kp) as u64;
    Some(vec![
        // Stage 1: every partition streams its slice into a k'-filter
        // and writes (key, index) candidates.
        launch(
            batch * parts,
            ROWWISE_BLOCK,
            KernelStats {
                bytes_read: n as u64 * KEY_BYTES * batch_u,
                bytes_written: m * PAIR_BYTES * batch_u,
                compute_ops: 4 * n as u64 * batch_u,
                shared_mem_bytes: shared1,
                ..KernelStats::default()
            },
        ),
        // Stage 2: one block per problem exactly reduces the
        // candidates.
        launch(
            batch,
            ROWWISE_BLOCK,
            KernelStats {
                bytes_read: m * PAIR_BYTES * batch_u,
                bytes_written: k as u64 * PAIR_BYTES * batch_u,
                compute_ops: 4 * m * batch_u,
                shared_mem_bytes: shared2,
                ..KernelStats::default()
            },
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::counters;

    fn a100() -> DeviceSpec {
        DeviceSpec::a100()
    }

    #[test]
    fn sketch_classes_bucket_prefix_bits() {
        assert_eq!(DistSketch::uniform().dist_class(), 0);
        assert_eq!(DistSketch::from_bits(7).dist_class(), 0);
        assert_eq!(DistSketch::from_bits(8).dist_class(), 1);
        assert_eq!(DistSketch::from_bits(16).dist_class(), 2);
        assert_eq!(DistSketch::from_bits(24).dist_class(), 3);
        assert_eq!(DistSketch::from_bits(99).shared_prefix_bits, 32);
    }

    #[test]
    fn sketch_from_sample_detects_shared_prefixes() {
        // Uniform-ish spread → tiny prefix.
        let spread: Vec<f32> = (0..1024).map(|i| i as f32 - 512.0).collect();
        assert_eq!(DistSketch::from_sample(&spread).dist_class(), 0);

        // Values packed into a narrow band share a long ordered prefix.
        let narrow: Vec<f32> = (0..1024).map(|i| 1.0 + i as f32 * 1e-7).collect();
        assert!(DistSketch::from_sample(&narrow).shared_prefix_bits >= 16);

        // Degenerate inputs.
        assert_eq!(DistSketch::from_sample::<f32>(&[]).shared_prefix_bits, 0);
        assert_eq!(DistSketch::from_sample(&[3.5f32]).shared_prefix_bits, 32);

        // 64-bit keys normalise onto the 32-bit class space.
        let wide64: Vec<f64> = (0..512).map(|i| i as f64 * 1e300 - 1e302).collect();
        assert_eq!(DistSketch::from_sample(&wide64).dist_class(), 0);
    }

    #[test]
    fn plan_keys_quantise_by_ceiling_log2() {
        let key = PlanKey::of(&ProblemShape::new(1000, 17, 3));
        assert_eq!((key.n_log2, key.k_log2, key.batch_log2), (10, 5, 2));
        // The representative is the largest member of the bucket.
        let rep = key.representative();
        assert_eq!((rep.n, rep.k, rep.batch), (1024, 32, 4));
        // Same bucket → same key.
        assert_eq!(key, PlanKey::of(&ProblemShape::new(1024, 32, 4)));
        assert_ne!(key, PlanKey::of(&ProblemShape::new(1025, 32, 4)));
    }

    #[test]
    fn candidates_always_include_air_and_respect_gates() {
        let spec = a100();
        let tiny = ProblemShape::new(4096, 64, 1);
        let cands = Tuner::candidates(&spec, &tiny);
        assert!(cands.iter().any(|c| matches!(c, TunedAlgo::Air { .. })));
        assert!(
            !cands.iter().any(|c| matches!(c, TunedAlgo::RadiK { .. })),
            "RadiK delegates below the one-block threshold"
        );

        let huge_k = ProblemShape::new(1 << 20, 1 << 14, 1);
        let cands = Tuner::candidates(&spec, &huge_k);
        assert!(
            !cands.contains(&TunedAlgo::Grid),
            "k beyond GridSelect's cap"
        );
        assert!(!cands.contains(&TunedAlgo::RowWise));
        assert!(cands.iter().any(|c| matches!(c, TunedAlgo::RadiK { .. })));
    }

    #[test]
    fn peek_is_counter_neutral_and_miss_safe() {
        let tuner = Tuner::new();
        let shape = ProblemShape::new(1 << 14, 32, 1);
        let before = counters().snapshot();
        // Cold table: peek neither plans nor counts.
        assert!(tuner.peek(&shape).is_none());
        let plan = tuner.plan(&a100(), &shape);
        let after_plan = counters().snapshot();
        // Warm table: peek returns exactly the cached plan, still
        // without touching the hit/miss counters.
        assert_eq!(tuner.peek(&shape), Some(plan));
        let after_peek = counters().snapshot();
        let d_plan = after_plan.delta_since(&before);
        let d_peek = after_peek.delta_since(&after_plan);
        assert_eq!(d_plan.tuner_plan_misses, 1);
        assert_eq!(d_peek.tuner_plan_hits, 0);
        assert_eq!(d_peek.tuner_plan_misses, 0);
    }

    #[test]
    fn calibration_snapshot_reflects_observations() {
        let tuner = Tuner::new();
        assert!(tuner.calibration_snapshot().is_empty());
        let shape = ProblemShape::new(1 << 16, 64, 1);
        let plan = tuner.plan(&a100(), &shape);
        // Observe double the raw prediction: EMA moves toward 2.0.
        tuner.observe(&a100(), &shape, plan.raw_us * 2.0);
        let snap = tuner.calibration_snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].0, plan.algo.family());
        assert!(snap[0].1 > 1.0 && snap[0].1 < 2.0, "factor {}", snap[0].1);
        assert_eq!(tuner.calibration_factor(plan.algo.family()), snap[0].1);
    }

    #[test]
    fn planner_picks_rowwise_for_many_small_rows() {
        let tuner = Tuner::new();
        let shape = ProblemShape::new(16 * 1024, 64, 256);
        let plan = tuner.plan(&a100(), &shape);
        assert_eq!(plan.algo, TunedAlgo::RowWise, "plan: {plan:?}");
    }

    #[test]
    fn planner_picks_radik_for_skewed_large_k_batches() {
        let tuner = Tuner::new();
        // Beyond GridSelect's k cap, heavily skewed, batched: AIR wastes
        // whole passes on the shared prefix, RadiK sketches it away.
        let shape = ProblemShape::new(1 << 20, 4096, 16).with_sketch(DistSketch::from_bits(24));
        let plan = tuner.plan(&a100(), &shape);
        assert!(
            matches!(plan.algo, TunedAlgo::RadiK { .. }),
            "plan: {plan:?}"
        );
    }

    #[test]
    fn planner_avoids_air_on_heavy_skew() {
        let tuner = Tuner::new();
        let spec = a100();
        let shape = ProblemShape::new(1 << 18, 128, 32).with_sketch(DistSketch::from_bits(28));
        let plan = tuner.plan(&spec, &shape);
        assert!(
            !matches!(plan.algo, TunedAlgo::Air { .. }),
            "static AIR re-reads the input four times under this skew; \
             the tuner must route around it, got {plan:?}"
        );
        // And the predicted win must be material.
        let air = tuner
            .predict_us(&spec, &shape, TunedAlgo::Air { bits_per_pass: 11 })
            .expect("air is always viable");
        assert!(
            air > plan.predicted_us * 1.2,
            "expected ≥1.2× predicted win over AIR: air={air:.1} vs {:.1}",
            plan.predicted_us
        );
    }

    #[test]
    fn cache_hits_and_misses_are_counted() {
        let tuner = Tuner::new();
        let before = counters().snapshot();
        let shape = ProblemShape::new(123_456, 99, 7);
        let first = tuner.plan(&a100(), &shape);
        // Different exact shape, same bucket → cache hit, same plan.
        let second = tuner.plan(&a100(), &ProblemShape::new(100_000, 70, 5));
        let delta = counters().snapshot().delta_since(&before);
        assert_eq!(first, second);
        assert_eq!(delta.tuner_plan_misses, 1);
        assert_eq!(delta.tuner_plan_hits, 1);
        assert_eq!(tuner.table_len(), 1);
    }

    #[test]
    fn plan_table_round_trips_through_text() {
        let tuner = Tuner::new();
        let spec = a100();
        for (n, k, batch, skew) in [
            (1 << 21, 32, 1, 0),
            (1 << 18, 128, 32, 28),
            (16 * 1024, 64, 256, 0),
            (1 << 20, 4096, 16, 24),
        ] {
            let shape = ProblemShape::new(n, k, batch).with_sketch(DistSketch::from_bits(skew));
            tuner.plan(&spec, &shape);
        }
        let text = tuner.table_text();
        assert!(text.starts_with(PLAN_TABLE_HEADER));
        let parsed = PlanTable::from_text(&text).expect("round trip parses");
        assert_eq!(parsed.to_text(), text);
        assert_eq!(parsed.len(), 4);

        // Malformed input is rejected with a line number.
        let err = PlanTable::from_text("n=1 k=2 junk").unwrap_err();
        assert!(err.contains("line 1"), "err: {err}");
    }

    #[test]
    fn same_shape_stream_yields_identical_plan_tables() {
        // Determinism: two tuners fed the same shapes and the same
        // observations must serialise to byte-identical tables.
        let spec = a100();
        let make = || {
            let tuner = Tuner::new();
            let mut seed = 0x2545F4914F6CDD1Du64;
            for _ in 0..64 {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let n = 1 + (seed >> 33) as usize % (1 << 21);
                let k = 1 + (seed >> 17) as usize % n.min(8192);
                let batch = 1 + (seed >> 7) as usize % 128;
                let skew = (seed % 33) as u32;
                let shape = ProblemShape::new(n, k, batch).with_sketch(DistSketch::from_bits(skew));
                let plan = tuner.plan(&spec, &shape);
                tuner.observe(&spec, &shape, plan.raw_us * 1.1);
            }
            tuner.table_text()
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn observation_feedback_recalibrates_and_can_flip_a_plan() {
        let tuner = Tuner::new();
        let spec = a100();
        let shape = ProblemShape::new(1 << 21, 32, 1);
        let initial = tuner.plan(&spec, &shape);
        let family = initial.algo.family();
        let before = counters().snapshot();

        // Report the chosen family as drastically slower than predicted
        // until the EMA pushes its calibrated cost past a rival's.
        let mut flipped = None;
        for _ in 0..32 {
            tuner.observe(&spec, &shape, initial.raw_us * 50.0);
            let now = tuner.plan(&spec, &shape);
            if now.algo.family() != family {
                flipped = Some(now);
                break;
            }
        }
        let flipped = flipped.expect("a 50× miss must eventually flip the plan");
        assert_ne!(flipped.algo.family(), family);
        assert!(
            tuner.calibration_factor(family) > 2.0,
            "EMA should have absorbed the slowdown"
        );
        let delta = counters().snapshot().delta_since(&before);
        assert!(delta.tuner_refinements >= 1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn shapes() -> impl Strategy<Value = ProblemShape> {
            (1usize..=1 << 22)
                .prop_flat_map(|n| (Just(n), 1usize..=n.min(1 << 14), 1usize..=256, 0u32..=32))
                .prop_map(|(n, k, batch, skew)| {
                    ProblemShape::new(n, k, batch).with_sketch(DistSketch::from_bits(skew))
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// The planner must never emit a configuration that violates
            /// an algorithm's structural limits — on any device.
            #[test]
            fn plans_respect_algorithm_limits(shape in shapes(), tiny_device in any::<bool>()) {
                let spec = if tiny_device { DeviceSpec::test_tiny() } else { DeviceSpec::a100() };
                let tuner = Tuner::new();
                let plan = tuner.plan(&spec, &shape);
                prop_assert!(plan.predicted_us.is_finite() && plan.predicted_us > 0.0);
                match plan.algo {
                    TunedAlgo::Grid => {
                        prop_assert!(shape.k <= GRID_MAX_K);
                    }
                    TunedAlgo::RowWise => {
                        prop_assert!(shape.k <= ROWWISE_MAX_K);
                        prop_assert!(
                            rowwise_shared_bytes(shape.k) <= spec.shared_mem_per_block as u64
                        );
                    }
                    TunedAlgo::RadiK { bits_per_pass } => {
                        prop_assert!(shape.n > ONE_BLOCK_THRESHOLD);
                        prop_assert!((1..=16).contains(&bits_per_pass));
                    }
                    TunedAlgo::Air { bits_per_pass } => {
                        prop_assert!((1..=16).contains(&bits_per_pass));
                    }
                    // The approximate families are opt-in only: the
                    // default planner must never pick them.
                    TunedAlgo::Bucketed { .. } | TunedAlgo::TwoStage { .. } => {
                        prop_assert!(false, "exact planner picked an approximate family");
                    }
                }
            }

            /// Approximate candidates are opt-in, clear their recall
            /// target analytically, and price finitely.
            #[test]
            fn approx_candidates_clear_their_target(
                shape in shapes(),
                target_pct in 50u32..100,
            ) {
                let spec = DeviceSpec::a100();
                prop_assert!(Tuner::approx_candidates(&spec, &shape, 1.0).is_empty());
                let target = target_pct as f64 / 100.0;
                for algo in Tuner::approx_candidates(&spec, &shape, target) {
                    let recall = match algo {
                        TunedAlgo::Bucketed { per_bucket } => {
                            crate::bucketed::BucketedTopK::new(per_bucket as usize)
                                .expected_recall(shape.k)
                        }
                        TunedAlgo::TwoStage { partitions, k_prime } => {
                            crate::twostage::TwoStageTopK::new(
                                partitions as usize,
                                k_prime as usize,
                            )
                            .expected_recall(shape.k)
                        }
                        other => {
                            prop_assert!(false, "unexpected exact candidate {other:?}");
                            unreachable!()
                        }
                    };
                    // plan_two_stage can fall short only when its gate
                    // (k' <= n/P) binds; those configs are filtered by
                    // the predictor, so survivors clear the target.
                    prop_assert!(
                        recall >= target - 1e-9,
                        "{algo:?} recall {recall} < target {target}"
                    );
                    let raw = predict_raw_us(&spec, &shape, algo);
                    prop_assert!(raw.is_some_and(|us| us.is_finite() && us > 0.0));
                }
            }

            /// Re-planning the same shape is idempotent and served from
            /// cache.
            #[test]
            fn planning_is_idempotent(shape in shapes()) {
                let tuner = Tuner::new();
                let spec = DeviceSpec::a100();
                let a = tuner.plan(&spec, &shape);
                let b = tuner.plan(&spec, &shape);
                prop_assert_eq!(a, b);
                prop_assert_eq!(tuner.table_len(), 1);
            }
        }
    }
}
