//! Tests for [`super`] — split out to keep the implementation file
//! readable (the suite is as long as the algorithm itself).

use super::*;
use crate::verify::verify_topk;
use datagen::{generate, Distribution};
use gpu_sim::{DeviceSpec, Gpu};

fn gpu() -> Gpu {
    Gpu::new(DeviceSpec::a100())
}

fn run_case(alg: &AirTopK, data: &[f32], k: usize) {
    let mut g = gpu();
    let input = g.htod("in", data);
    let out = alg.select(&mut g, &input, k);
    let v = out.values.to_vec();
    let i = out.indices.to_vec();
    verify_topk(data, k, &v, &i)
        .unwrap_or_else(|e| panic!("AIR failed: {e} (n = {}, k = {k})", data.len()));
}

#[test]
fn small_hand_case() {
    run_case(
        &AirTopK::default(),
        &[5.0, 1.0, 4.0, 1.5, -2.0, 8.0, 0.0],
        3,
    );
}

#[test]
fn all_distributions_many_shapes() {
    let alg = AirTopK::default();
    for dist in [
        Distribution::Uniform,
        Distribution::Normal,
        Distribution::RadixAdversarial { m_bits: 20 },
    ] {
        for (n, k) in [
            (1usize, 1usize),
            (100, 1),
            (100, 100),
            (1000, 7),
            (10000, 1000),
            (8192, 2048),
        ] {
            let data = generate(dist, n, 42);
            run_case(&alg, &data, k);
        }
    }
}

#[test]
fn k_equals_n_and_k_one() {
    let data = generate(Distribution::Normal, 5000, 7);
    run_case(&AirTopK::default(), &data, 5000);
    run_case(&AirTopK::default(), &data, 1);
}

#[test]
fn all_elements_identical() {
    run_case(&AirTopK::default(), &vec![3.25f32; 1000], 17);
}

#[test]
fn heavy_ties_at_boundary() {
    let mut data = vec![1.0f32; 500];
    data.extend(vec![2.0f32; 500]);
    run_case(&AirTopK::default(), &data, 750);
}

#[test]
fn negative_and_special_values() {
    let data = vec![
        -0.0,
        0.0,
        f32::INFINITY,
        f32::NEG_INFINITY,
        -1e30,
        1e-42,
        -1e-42,
        7.25,
    ];
    for k in 1..=8 {
        run_case(&AirTopK::default(), &data, k);
    }
}

#[test]
fn non_adaptive_matches_adaptive() {
    let data = generate(Distribution::RadixAdversarial { m_bits: 20 }, 20000, 3);
    let na = AirConfig {
        adaptive: false,
        ..AirConfig::default()
    };
    run_case(&AirTopK::new(na), &data, 333);
    run_case(&AirTopK::default(), &data, 333);
}

#[test]
fn early_stop_off_still_correct() {
    let cfg = AirConfig {
        early_stop: false,
        ..AirConfig::default()
    };
    let data = generate(Distribution::Uniform, 4096, 5);
    run_case(&AirTopK::new(cfg), &data, 4096);
}

#[test]
fn eight_bit_digits() {
    let cfg = AirConfig {
        bits_per_pass: 8,
        ..AirConfig::default()
    };
    let data = generate(Distribution::Normal, 30000, 11);
    run_case(&AirTopK::new(cfg), &data, 500);
}

#[test]
fn batch_is_correct_per_problem() {
    let mut g = gpu();
    let alg = AirTopK::default();
    let datas: Vec<Vec<f32>> = (0..5)
        .map(|i| generate(Distribution::Uniform, 3000, 100 + i))
        .collect();
    let inputs: Vec<_> = datas
        .iter()
        .enumerate()
        .map(|(i, d)| g.htod(&format!("in{i}"), d))
        .collect();
    let outs = alg.select_batch(&mut g, &inputs, 64);
    assert_eq!(outs.len(), 5);
    for (d, o) in datas.iter().zip(&outs) {
        verify_topk(d, 64, &o.values.to_vec(), &o.indices.to_vec()).unwrap();
    }
}

#[test]
fn batch_uses_one_set_of_launches() {
    let mut g = gpu();
    let alg = AirTopK::default();
    let datas: Vec<Vec<f32>> = (0..10)
        .map(|i| generate(Distribution::Uniform, 20_000, i))
        .collect();
    let inputs: Vec<_> = datas
        .iter()
        .enumerate()
        .map(|(i, d)| g.htod(&format!("b{i}"), d))
        .collect();
    g.reset_profile();
    alg.select_batch(&mut g, &inputs, 32);
    // 3 fused + last filter = 4 launches regardless of batch.
    assert_eq!(g.timeline().kernel_count(), 4);
    // And zero host-device transfers during the selection.
    assert_eq!(g.timeline().memcpy_us(), 0.0);
}

#[test]
fn one_block_fast_path_single_launch() {
    // RAFT's small-N fast path: everything in one kernel.
    let mut g = gpu();
    let data = generate(Distribution::Uniform, 2048, 3);
    let input = g.htod("in", &data);
    g.reset_profile();
    let out = AirTopK::default().select(&mut g, &input, 32);
    verify_topk(&data, 32, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
    assert_eq!(g.timeline().kernel_count(), 1);
    let names: Vec<_> = g.reports().iter().map(|r| r.name.clone()).collect();
    assert_eq!(names, vec!["radix_topk_one_block_kernel"]);
    // Input is read exactly once.
    assert!(g.reports()[0].stats.bytes_read <= (2048 * 4 + 1024) as u64);
}

#[test]
fn one_block_fast_path_edge_cases() {
    let alg = AirTopK::default();
    // Boundary sizes around the threshold.
    for n in [
        ONE_BLOCK_THRESHOLD - 1,
        ONE_BLOCK_THRESHOLD,
        ONE_BLOCK_THRESHOLD + 1,
    ] {
        let data = generate(Distribution::Normal, n, n as u64);
        for k in [1usize, n / 2, n] {
            run_case(&alg, &data, k);
        }
    }
    // Ties and identical values through the fast path.
    run_case(&alg, &vec![1.5f32; 4096], 1000);
}

#[test]
fn kernel_launch_count_matches_figure_3() {
    let mut g = gpu();
    let data = generate(Distribution::Uniform, 100_000, 1);
    let input = g.htod("in", &data);
    g.reset_profile();
    let _ = AirTopK::default().select(&mut g, &input, 2048);
    // Fig. 3: exactly 3 iteration-fused kernels + 1 last filter.
    let names: Vec<_> = g.reports().iter().map(|r| r.name.clone()).collect();
    assert_eq!(
        names,
        vec![
            "iteration_fused_kernel",
            "iteration_fused_kernel",
            "iteration_fused_kernel",
            "last_filter_kernel"
        ]
    );
    assert_eq!(g.timeline().memcpy_us(), 0.0, "AIR never touches PCIe");
    // Only launch overhead, no host sync — and all launches after
    // the first pipeline down to the stream gap (Fig. 8's "too
    // narrow to be observed").
    let expected_idle = g.spec().kernel_launch_us + 3.0 * g.spec().kernel_gap_us;
    assert!((g.timeline().idle_us() - expected_idle).abs() < 1e-9);
}

#[test]
fn adaptive_reduces_traffic_on_adversarial_data() {
    let data = generate(Distribution::RadixAdversarial { m_bits: 20 }, 200_000, 5);
    let run = |adaptive: bool| -> u64 {
        let mut g = gpu();
        let input = g.htod("in", &data);
        g.reset_profile();
        let cfg = AirConfig {
            adaptive,
            ..AirConfig::default()
        };
        let out = AirTopK::new(cfg).select(&mut g, &input, 1000);
        verify_topk(&data, 1000, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
        g.reports().iter().map(|r| r.stats.total_mem_bytes()).sum()
    };
    let with = run(true);
    let without = run(false);
    assert!(
        with < without / 2,
        "adaptive {with} should be well under non-adaptive {without}"
    );
}

#[test]
fn k_equals_n_takes_trivial_copy_path() {
    let mut g = gpu();
    let data = generate(Distribution::Uniform, 100_000, 5);
    let input = g.htod("in", &data);
    g.reset_profile();
    let out = AirTopK::default().select(&mut g, &input, data.len());
    verify_topk(
        &data,
        data.len(),
        &out.values.to_vec(),
        &out.indices.to_vec(),
    )
    .unwrap();
    assert_eq!(g.timeline().kernel_count(), 1);
    assert_eq!(g.reports()[0].name, "trivial_copy_kernel");
}

#[test]
fn early_stop_reduces_time_when_candidates_collapse() {
    // Three distinct values; K covering the two smallest groups
    // makes the remaining-K equal the candidate count right after
    // pass 0 — the §3.3 early-stop trigger.
    let n = 300_000;
    let mut data = Vec::with_capacity(n);
    for i in 0..n {
        data.push(match i % 3 {
            0 => 1.0f32,
            1 => 2.0,
            _ => 4.0,
        });
    }
    let k = 2 * n / 3;
    let run = |early: bool| -> f64 {
        let mut g = gpu();
        let input = g.htod("in", &data);
        g.reset_profile();
        let cfg = AirConfig {
            early_stop: early,
            ..AirConfig::default()
        };
        let out = AirTopK::new(cfg).select(&mut g, &input, k);
        verify_topk(&data, k, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
        g.elapsed_us()
    };
    let with = run(true);
    let without = run(false);
    assert!(with < without, "early stop {with} vs {without}");
}

#[test]
fn memory_footprint_capped_by_alpha() {
    let n = 128 * 1024;
    let data = generate(Distribution::Uniform, n, 5);
    let mut g = gpu();
    let input = g.htod("in", &data);
    let base = g.mem_allocated(); // input already counted here
    let _ = AirTopK::default().select(&mut g, &input, 100);
    // §3.2: candidate buffers are at most N/α elements each (two
    // ping-pong val+idx pairs), plus small control structures.
    let cap_bytes = (n / 128) * 4 * 4;
    let overhead = g.mem_high_water() - base;
    assert!(
        overhead <= cap_bytes + 64 * 1024,
        "workspace {overhead} exceeds adaptive cap {cap_bytes}"
    );
}

#[test]
#[should_panic(expected = "alpha")]
fn alpha_lower_bound_enforced() {
    AirTopK::new(AirConfig {
        alpha: 2,
        ..AirConfig::default()
    });
}

#[test]
fn generic_u32_keys() {
    let mut g = gpu();
    // Values that exercise the full u32 range (n above the
    // one-block threshold so the multi-pass path runs too).
    let data: Vec<u32> = (0..20_000u32).map(|i| i.wrapping_mul(2654435761)).collect();
    let input = g.htod("in", &data);
    for k in [1usize, 100, 9000] {
        let mut out = AirTopK::default()
            .run_batch_typed(&mut g, std::slice::from_ref(&input), k)
            .unwrap();
        let (vals, idxs) = out.pop().unwrap();
        let mut got = vals.to_vec();
        got.sort_unstable();
        let mut expect = data.clone();
        expect.sort_unstable();
        expect.truncate(k);
        assert_eq!(got, expect, "k = {k}");
        for (v, i) in vals.to_vec().iter().zip(idxs.to_vec()) {
            assert_eq!(data[i as usize], *v);
        }
    }
}

#[test]
fn sixty_four_bit_keys_run_six_passes() {
    // f64 keys: 6 fused passes (⌈64/11⌉) + last filter.
    let mut g = gpu();
    let data: Vec<f64> = (0..30_000u64)
        .map(|i| {
            let h = i.wrapping_mul(0x9E3779B97F4A7C15);
            (h as f64 / u64::MAX as f64) * 2e15 - 1e15
        })
        .collect();
    let input = g.htod("in", &data);
    g.reset_profile();
    let k = 500;
    let mut out = AirTopK::default()
        .run_batch_typed(&mut g, &[input], k)
        .unwrap();
    let fused = g
        .reports()
        .iter()
        .filter(|r| r.name == "iteration_fused_kernel")
        .count();
    assert_eq!(fused, 6, "64-bit keys need ⌈64/11⌉ = 6 passes");
    let (vals, idxs) = out.pop().unwrap();
    let mut got = vals.to_vec();
    got.sort_by(f64::total_cmp);
    let mut expect = data.clone();
    expect.sort_by(f64::total_cmp);
    expect.truncate(k);
    assert_eq!(got, expect);
    for (v, i) in vals.to_vec().iter().zip(idxs.to_vec()) {
        assert_eq!(data[i as usize].to_bits(), v.to_bits());
    }
}

#[test]
fn u64_and_i64_keys_small_and_large_paths() {
    let mut g = gpu();
    // Small n -> one-block path; large n -> multi-pass path.
    for n in [4096usize, 20_000] {
        let du: Vec<u64> = (0..n as u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let iu = g.htod("u64in", &du);
        let (vals, _) = AirTopK::default()
            .run_batch_typed(&mut g, &[iu], 99)
            .unwrap()
            .pop()
            .unwrap();
        let mut got = vals.to_vec();
        got.sort_unstable();
        let mut expect = du.clone();
        expect.sort_unstable();
        expect.truncate(99);
        assert_eq!(got, expect, "u64 n={n}");

        let di: Vec<i64> = du.iter().map(|&x| x as i64).collect();
        let ii = g.htod("i64in", &di);
        let (vals, _) = AirTopK::default()
            .run_batch_typed(&mut g, &[ii], 99)
            .unwrap()
            .pop()
            .unwrap();
        let mut got = vals.to_vec();
        got.sort_unstable();
        let mut expect = di.clone();
        expect.sort_unstable();
        expect.truncate(99);
        assert_eq!(got, expect, "i64 n={n}");
        assert!(got[0] < 0);
    }
}

#[test]
fn generic_i32_keys_with_negatives() {
    let mut g = gpu();
    let data: Vec<i32> = (0..10_000i64)
        .map(|i| ((i * 2654435761) % 100_000 - 50_000) as i32)
        .collect();
    let input = g.htod("in", &data);
    let k = 257;
    let mut out = AirTopK::default()
        .run_batch_typed(&mut g, &[input], k)
        .unwrap();
    let (vals, _) = out.pop().unwrap();
    let mut got = vals.to_vec();
    got.sort_unstable();
    let mut expect = data.clone();
    expect.sort_unstable();
    expect.truncate(k);
    assert_eq!(got, expect);
    assert!(got[0] < 0, "negative keys must order correctly");
}

#[test]
fn kth_value_matches_sorted_reference() {
    let mut g = gpu();
    for (n, k) in [
        (20_000usize, 1usize),
        (20_000, 777),
        (4096, 4095),
        (50_000, 50_000),
    ] {
        let data = generate(Distribution::Normal, n, k as u64);
        let input = g.htod("in", &data);
        let kth = AirTopK::default().kth_value(&mut g, &input, k).unwrap();
        let mut sorted = data.clone();
        sorted.sort_by(f32::total_cmp);
        assert_eq!(kth.to_bits(), sorted[k - 1].to_bits(), "n={n} k={k}");
    }
}

#[test]
fn kth_value_on_integer_keys() {
    let mut g = gpu();
    let data: Vec<u32> = (0..30_000u32).map(|i| i.wrapping_mul(2654435761)).collect();
    let input = g.htod("in", &data);
    let kth = AirTopK::default()
        .kth_value_typed(&mut g, &input, 1000)
        .unwrap();
    let mut sorted = data.clone();
    sorted.sort_unstable();
    assert_eq!(kth, sorted[999]);
}

#[test]
fn proptest_like_sweep() {
    // A quick deterministic sweep over awkward (n, k) pairs.
    let alg = AirTopK::default();
    for n in [1usize, 2, 3, 31, 32, 33, 511, 513, 8191] {
        let data = generate(Distribution::Normal, n, n as u64);
        for k in [1usize, 2, n / 2, n.saturating_sub(1), n] {
            if k >= 1 && k <= n {
                run_case(&alg, &data, k);
            }
        }
    }
}
