//! Analytic recall model shared by the approximate top-K families.
//!
//! Both approximate algorithms in this crate — the bucketed
//! single-pass selector ([`crate::bucketed::BucketedTopK`], after
//! "Approximate Top-k for Increased Parallelism") and the generalized
//! two-stage selector ([`crate::twostage::TwoStageTopK`]) — share one
//! structural approximation: the input is cut into `P` parts, each
//! part independently keeps its `c` smallest elements, and anything a
//! part fails to keep is lost. For exchangeable (i.i.d.) inputs the
//! number of *true* top-K members landing in any one part is
//! `X ~ Binomial(K, 1/P)`, that part contributes `min(X, c)` of them,
//! and by linearity of expectation
//!
//! ```text
//! E[recall] = (1/K) · Σ_parts E[min(X, c_part)]
//! E[min(X, c)] = c − Σ_{x=0}^{c−1} (c − x) · P(X = x)
//! ```
//!
//! This is *exact* for i.i.d. inputs (the per-part counts are
//! marginally binomial even though they are jointly multinomial —
//! linearity does not need independence), which is precisely the
//! regime the datagen distributions model; the recall property tests
//! in `tests/recall.rs` hold the measured recall against it. The
//! planners ([`plan_bucketed`], [`plan_two_stage`]) invert the model:
//! given a recall target they pick the cheapest partitioning whose
//! expected recall still clears it.

/// `E[min(X, cap)]` where `X ~ Binomial(k, 1/parts)`.
///
/// The binomial pmf is accumulated iteratively in `f64`:
/// `P(0) = (1−p)^k`, `P(x+1) = P(x) · (k−x)/(x+1) · p/(1−p)`.
fn expected_min_binomial(k: usize, parts: usize, cap: usize) -> f64 {
    if cap == 0 {
        return 0.0;
    }
    if parts <= 1 {
        // X = k deterministically.
        return k.min(cap) as f64;
    }
    if cap >= k {
        // min(X, cap) = X, and E[X] = k/parts.
        return k as f64 / parts as f64;
    }
    let p = 1.0 / parts as f64;
    let ratio = p / (1.0 - p);
    let mut pmf = (1.0 - p).powi(k as i32);
    let mut shortfall = 0.0; // Σ (cap − x) · P(X = x) for x < cap
    for x in 0..cap {
        shortfall += (cap - x) as f64 * pmf;
        pmf *= (k - x) as f64 / (x + 1) as f64 * ratio;
    }
    cap as f64 - shortfall
}

/// Expected recall when the input is split into `parts` equal parts
/// and each keeps its `take` smallest elements (the two-stage shape:
/// every partition keeps top-k′, the exact reduce loses nothing that
/// survived stage one).
pub fn expected_recall(k: usize, parts: usize, take: usize) -> f64 {
    if k == 0 || parts <= 1 || take >= k {
        return 1.0;
    }
    (parts as f64 * expected_min_binomial(k, parts, take) / k as f64).min(1.0)
}

/// Expected recall with per-part keep counts (the bucketed shape: the
/// last bucket keeps fewer so the outputs total exactly K).
pub fn expected_recall_parts(k: usize, takes: &[usize]) -> f64 {
    let parts = takes.len();
    if k == 0 || parts <= 1 || takes.iter().all(|&t| t >= k) {
        return 1.0;
    }
    let total: f64 = takes
        .iter()
        .map(|&t| expected_min_binomial(k, parts, t))
        .sum();
    (total / k as f64).min(1.0)
}

/// A bucketed plan: `buckets` blocks each keep `per_bucket` winners
/// (the last keeps `k − (buckets−1)·per_bucket`), totalling exactly K.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketedPlan {
    /// Number of contiguous buckets (= blocks).
    pub buckets: usize,
    /// Winners kept per bucket (last bucket keeps the remainder).
    pub per_bucket: usize,
}

impl BucketedPlan {
    /// Per-bucket keep counts, length `buckets`, summing to `k`.
    pub fn takes(&self, k: usize) -> Vec<usize> {
        let mut takes = vec![self.per_bucket; self.buckets];
        if let Some(last) = takes.last_mut() {
            *last = k - (self.buckets - 1) * self.per_bucket;
        }
        takes
    }

    /// Expected recall of this plan for problem size `k` (i.i.d.
    /// inputs).
    pub fn expected_recall(&self, k: usize) -> f64 {
        expected_recall_parts(k, &self.takes(k))
    }
}

/// Cheapest bucketed plan whose expected recall clears `target`:
/// smallest `per_bucket` (most buckets, most parallelism, least work
/// per block) that still meets the target and leaves every bucket at
/// least `per_bucket` elements to choose from. `per_bucket = k`
/// (one bucket) is exact, so a plan always exists for `k ≤ n`.
pub fn plan_bucketed(n: usize, k: usize, target: f64) -> BucketedPlan {
    for per_bucket in 1..k {
        let buckets = k.div_ceil(per_bucket);
        // Every bucket must cover at least per_bucket elements.
        if n / buckets < per_bucket {
            continue;
        }
        let plan = BucketedPlan {
            buckets,
            per_bucket,
        };
        if plan.expected_recall(k) >= target {
            return plan;
        }
    }
    BucketedPlan {
        buckets: 1,
        per_bucket: k,
    }
}

/// A two-stage plan: `partitions` blocks each keep their `k_prime`
/// smallest, then one exact reduce over `partitions · k_prime`
/// candidates returns K.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoStagePlan {
    /// Stage-one partition count (= stage-one blocks).
    pub partitions: usize,
    /// Candidates each partition keeps (k′).
    pub k_prime: usize,
}

impl TwoStagePlan {
    /// Stage-two candidate count.
    pub fn candidates(&self) -> usize {
        self.partitions * self.k_prime
    }

    /// Expected recall of this plan for problem size `k` (i.i.d.
    /// inputs). The exact reduce keeps every true member that
    /// survived stage one, so the stage-one survival *is* the recall.
    pub fn expected_recall(&self, k: usize) -> f64 {
        expected_recall(k, self.partitions, self.k_prime)
    }
}

/// Cheapest two-stage plan clearing `target`: the partition count
/// follows the device-saturating default (one block per ~8K-element
/// slice, clamped to `[2, 64]`), then the smallest k′ meeting the
/// target wins. k′ is floored at `⌈k/P⌉` so the reduce always has at
/// least K candidates, and capped at the partition size.
pub fn plan_two_stage(n: usize, k: usize, target: f64) -> TwoStagePlan {
    let partitions = (n / crate::air::ONE_BLOCK_THRESHOLD).clamp(2, 64);
    let part_len = n / partitions;
    let floor = k.div_ceil(partitions).max(1);
    for k_prime in floor..=k.min(part_len) {
        let plan = TwoStagePlan {
            partitions,
            k_prime,
        };
        if plan.expected_recall(k) >= target {
            return plan;
        }
    }
    // k′ = min(k, part_len); if even that misses the target the
    // caller's gate (k ≤ n/partitions) was violated — fall back to
    // the most faithful feasible plan.
    TwoStagePlan {
        partitions,
        k_prime: k.min(part_len).max(floor),
    }
}

/// Measured value-multiset recall of an approximate answer:
/// `|approx ∩ exact top-K| / K`, where the intersection is over value
/// *multisets* (bit-exact f32 comparison). Tie-robust: any copy of a
/// boundary value counts, which is the only fair reading when the
/// input holds duplicates (Zipf-shaped data especially).
pub fn measured_recall(data: &[f32], k: usize, approx: &[f32]) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let mut sorted = data.to_vec();
    sorted.select_nth_unstable_by(k - 1, f32::total_cmp);
    let mut want: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for v in &sorted[..k] {
        *want.entry(v.to_bits()).or_default() += 1;
    }
    let mut hit = 0usize;
    for v in approx {
        if let Some(c) = want.get_mut(&v.to_bits()) {
            if *c > 0 {
                *c -= 1;
                hit += 1;
            }
        }
    }
    hit as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_shapes_are_exact() {
        assert_eq!(expected_recall(100, 1, 1), 1.0);
        assert_eq!(expected_recall(100, 8, 100), 1.0);
        assert_eq!(expected_recall(0, 8, 1), 1.0);
        assert_eq!(expected_recall_parts(10, &[10, 10]), 1.0);
    }

    #[test]
    fn recall_is_monotone_in_take() {
        let mut prev = 0.0;
        for take in 1..=64 {
            let r = expected_recall(64, 8, take);
            assert!(r >= prev, "take={take}: {r} < {prev}");
            assert!((0.0..=1.0).contains(&r));
            prev = r;
        }
        assert_eq!(prev, 1.0);
    }

    #[test]
    fn recall_increases_with_more_parts_at_fixed_take() {
        // At a fixed per-part keep, more parts keep more candidates
        // in total (parts · take), so recall rises toward 1.
        let mut prev = 0.0;
        for parts in [2usize, 4, 8, 16, 32] {
            let r = expected_recall(64, parts, 8);
            assert!(r >= prev - 1e-12, "parts={parts}: {r} < {prev}");
            prev = r;
        }
        assert!(prev > 0.95, "32 parts x 8 keeps should be near-exact");
    }

    #[test]
    fn expected_min_matches_monte_carlo() {
        // Cheap deterministic Monte-Carlo cross-check of the pmf
        // accumulation (SplitMix64, no external RNG dependency).
        let (k, parts, cap) = (32usize, 4usize, 4usize);
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let trials = 40_000;
        let mut acc = 0.0;
        for _ in 0..trials {
            let mut x = 0usize;
            for _ in 0..k {
                if next() % parts as u64 == 0 {
                    x += 1;
                }
            }
            acc += x.min(cap) as f64;
        }
        let mc = acc / trials as f64;
        let analytic = expected_min_binomial(k, parts, cap);
        assert!(
            (mc - analytic).abs() < 0.05,
            "mc={mc:.4} analytic={analytic:.4}"
        );
    }

    #[test]
    fn bucketed_planner_meets_target_and_prefers_parallelism() {
        for &target in &[0.5, 0.8, 0.9, 0.95, 0.99] {
            let plan = plan_bucketed(1 << 16, 256, target);
            assert!(
                plan.expected_recall(256) >= target,
                "target={target}: {plan:?}"
            );
            assert_eq!(plan.takes(256).iter().sum::<usize>(), 256);
        }
        // Tighter targets need bigger per-bucket keeps.
        let loose = plan_bucketed(1 << 16, 256, 0.8);
        let tight = plan_bucketed(1 << 16, 256, 0.99);
        assert!(
            tight.per_bucket > loose.per_bucket,
            "{loose:?} vs {tight:?}"
        );
        // target = 1.0 degenerates to the exact single bucket.
        let exact = plan_bucketed(1 << 16, 256, 1.0);
        assert_eq!(exact.buckets, 1);
        assert_eq!(exact.per_bucket, 256);
    }

    #[test]
    fn two_stage_planner_meets_target_with_enough_candidates() {
        for &target in &[0.5, 0.9, 0.95, 0.99] {
            let plan = plan_two_stage(1 << 18, 128, target);
            assert!(
                plan.expected_recall(128) >= target,
                "target={target}: {plan:?}"
            );
            assert!(plan.candidates() >= 128, "{plan:?}");
            assert!(plan.k_prime <= (1 << 18) / plan.partitions);
        }
        // Two-stage at the same partitioning dominates bucketed: it
        // keeps P·k′ ≥ K candidates where bucketed keeps exactly K.
        let ts = TwoStagePlan {
            partitions: 8,
            k_prime: 16,
        };
        let b = BucketedPlan {
            buckets: 8,
            per_bucket: 16,
        };
        assert!(ts.expected_recall(128) >= b.expected_recall(128));
    }

    #[test]
    fn small_n_clamps_the_partition_count() {
        let plan = plan_two_stage(4096, 64, 0.9);
        assert_eq!(plan.partitions, 2);
        assert!(plan.k_prime <= 2048);
    }
}
