//! The common interface every top-K algorithm implements.

use gpu_sim::{DeviceBuffer, Gpu};

/// The paper's taxonomy of parallel top-K algorithms (§1, Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Sort everything, take the first K (CUB radix sort).
    Sorting,
    /// Identify and sort only the best K (WarpSelect, Bitonic Top-K).
    PartialSorting,
    /// Recursively bucket candidates by value (RadixSelect, AIR Top-K,
    /// QuickSelect, BucketSelect, SampleSelect).
    PartitionBased,
}

impl Category {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Category::Sorting => "Sorting",
            Category::PartialSorting => "Partial Sorting",
            Category::PartitionBased => "Partition-based",
        }
    }
}

/// Device-resident result of a top-K selection: `values[i]` is a
/// selected element and `indices[i]` its position in the input list
/// (§2.1's output contract). Order within the K results is unspecified
/// unless the algorithm documents otherwise.
#[derive(Debug, Clone)]
pub struct TopKOutput {
    /// Selected values, length K.
    pub values: DeviceBuffer<f32>,
    /// Input positions of the selected values, length K.
    pub indices: DeviceBuffer<u32>,
}

/// A parallel top-K algorithm (smallest-K convention, like the paper).
///
/// Inputs are already device-resident — the benchmark measures the
/// selection, not the upload — and outputs stay device-resident.
pub trait TopKAlgorithm: Send + Sync {
    /// Algorithm name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Which family it belongs to (Table 1).
    fn category(&self) -> Category;

    /// Largest supported K, if limited. The paper notes 2048 for
    /// WarpSelect/BlockSelect/GridSelect and 256 for Bitonic Top-K
    /// (§2.2, §5.1).
    fn max_k(&self) -> Option<usize> {
        None
    }

    /// Select the K smallest elements of `input`.
    ///
    /// # Panics
    /// If `k == 0`, `k > input.len()`, or `k` exceeds [`Self::max_k`].
    fn select(&self, gpu: &mut Gpu, input: &DeviceBuffer<f32>, k: usize) -> TopKOutput;

    /// Solve a batch of same-(N, K) problems (§5.1's batched
    /// benchmark).
    ///
    /// The default loops over the batch sequentially — which is what
    /// the single-query baseline libraries do, and exactly why the
    /// paper's batch-100 speedups over them are so large. Natively
    /// batched algorithms (AIR Top-K, GridSelect, the Faiss selects)
    /// override this with a single fused launch set.
    fn select_batch(
        &self,
        gpu: &mut Gpu,
        inputs: &[DeviceBuffer<f32>],
        k: usize,
    ) -> Vec<TopKOutput> {
        inputs.iter().map(|inp| self.select(gpu, inp, k)).collect()
    }
}

/// Validate common preconditions; algorithms call this first.
pub fn check_args(alg: &dyn TopKAlgorithm, n: usize, k: usize) {
    assert!(k >= 1, "{}: k must be >= 1", alg.name());
    assert!(
        k <= n,
        "{}: k = {k} exceeds input length n = {n}",
        alg.name()
    );
    if let Some(mk) = alg.max_k() {
        assert!(
            k <= mk,
            "{}: k = {k} exceeds supported max {mk}",
            alg.name()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl TopKAlgorithm for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn category(&self) -> Category {
            Category::Sorting
        }
        fn max_k(&self) -> Option<usize> {
            Some(16)
        }
        fn select(&self, gpu: &mut Gpu, input: &DeviceBuffer<f32>, k: usize) -> TopKOutput {
            check_args(self, input.len(), k);
            TopKOutput {
                values: gpu.alloc("v", k),
                indices: gpu.alloc("i", k),
            }
        }
    }

    #[test]
    fn category_names() {
        assert_eq!(Category::Sorting.name(), "Sorting");
        assert_eq!(Category::PartialSorting.name(), "Partial Sorting");
        assert_eq!(Category::PartitionBased.name(), "Partition-based");
    }

    #[test]
    fn default_batch_loops_sequentially() {
        let mut gpu = Gpu::new(gpu_sim::DeviceSpec::test_tiny());
        let inputs: Vec<_> = (0..3)
            .map(|i| gpu.htod(&format!("in{i}"), &[3.0f32, 1.0, 2.0]))
            .collect();
        let outs = Dummy.select_batch(&mut gpu, &inputs, 2);
        assert_eq!(outs.len(), 3);
    }

    #[test]
    #[should_panic(expected = "exceeds supported max")]
    fn check_args_enforces_max_k() {
        let mut gpu = Gpu::new(gpu_sim::DeviceSpec::test_tiny());
        let input = gpu.htod("in", &vec![0.0f32; 100]);
        Dummy.select(&mut gpu, &input, 17);
    }

    #[test]
    #[should_panic(expected = "k must be >= 1")]
    fn check_args_rejects_zero_k() {
        let mut gpu = Gpu::new(gpu_sim::DeviceSpec::test_tiny());
        let input = gpu.htod("in", &[1.0f32]);
        Dummy.select(&mut gpu, &input, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds input length")]
    fn check_args_rejects_k_beyond_n() {
        let mut gpu = Gpu::new(gpu_sim::DeviceSpec::test_tiny());
        let input = gpu.htod("in", &[1.0f32, 2.0]);
        Dummy.select(&mut gpu, &input, 3);
    }
}
