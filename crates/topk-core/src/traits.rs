//! The common interface every top-K algorithm implements.

use crate::error::TopKError;
use gpu_sim::{Backend, DeviceBuffer};

/// The paper's taxonomy of parallel top-K algorithms (§1, Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Sort everything, take the first K (CUB radix sort).
    Sorting,
    /// Identify and sort only the best K (WarpSelect, Bitonic Top-K).
    PartialSorting,
    /// Recursively bucket candidates by value (RadixSelect, AIR Top-K,
    /// QuickSelect, BucketSelect, SampleSelect).
    PartitionBased,
}

impl Category {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            Category::Sorting => "Sorting",
            Category::PartialSorting => "Partial Sorting",
            Category::PartitionBased => "Partition-based",
        }
    }
}

/// Device-side `(values, indices)` output pair of one problem, as
/// returned per batch entry by the typed (non-`f32`) entry points.
pub type TypedOutput<T> = (DeviceBuffer<T>, DeviceBuffer<u32>);

/// Device-resident result of a top-K selection: `values[i]` is a
/// selected element and `indices[i]` its position in the input list
/// (§2.1's output contract). Order within the K results is unspecified
/// unless the algorithm documents otherwise.
#[derive(Debug, Clone)]
#[must_use = "a top-K output holds live device allocations"]
pub struct TopKOutput {
    /// Selected values, length K.
    pub values: DeviceBuffer<f32>,
    /// Input positions of the selected values, length K.
    pub indices: DeviceBuffer<u32>,
    /// The K this output answers: `values` and `indices` have exactly
    /// this many meaningful entries. Carried explicitly so downstream
    /// code never has to re-derive it from buffer lengths.
    pub k: usize,
}

impl TopKOutput {
    /// Package a (values, indices) pair, recording its `k` from the
    /// value buffer's length.
    pub fn new(values: DeviceBuffer<f32>, indices: DeviceBuffer<u32>) -> Self {
        debug_assert_eq!(values.len(), indices.len());
        let k = values.len();
        TopKOutput { values, indices, k }
    }
}

/// A parallel top-K algorithm (smallest-K convention, like the paper).
///
/// Inputs are already device-resident — the benchmark measures the
/// selection, not the upload — and outputs stay device-resident.
pub trait TopKAlgorithm: Send + Sync {
    /// Algorithm name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Which family it belongs to (Table 1).
    fn category(&self) -> Category;

    /// Largest supported K, if limited. The paper notes 2048 for
    /// WarpSelect/BlockSelect/GridSelect and 256 for Bitonic Top-K
    /// (§2.2, §5.1).
    fn max_k(&self) -> Option<usize> {
        None
    }

    /// Select the K smallest elements of `input`.
    ///
    /// This is the primary entry point: invalid queries (`k == 0`,
    /// `k > input.len()`, `k` beyond [`Self::max_k`]), exhausted device
    /// memory, and invalid launches are reported as [`TopKError`]
    /// values rather than panics, so a serving layer can fail one query
    /// without losing the device.
    #[must_use = "selection results report errors through the Result"]
    fn try_select(
        &self,
        gpu: &mut dyn Backend,
        input: &DeviceBuffer<f32>,
        k: usize,
    ) -> Result<TopKOutput, TopKError>;

    /// Solve a batch of same-(N, K) problems (§5.1's batched
    /// benchmark), failing on the first query the algorithm rejects.
    ///
    /// The default loops over the batch sequentially — which is what
    /// the single-query baseline libraries do, and exactly why the
    /// paper's batch-100 speedups over them are so large. Natively
    /// batched algorithms (AIR Top-K, GridSelect, the Faiss selects)
    /// override this with a single fused launch set.
    #[must_use = "selection results report errors through the Result"]
    fn try_select_batch(
        &self,
        gpu: &mut dyn Backend,
        inputs: &[DeviceBuffer<f32>],
        k: usize,
    ) -> Result<Vec<TopKOutput>, TopKError> {
        inputs
            .iter()
            .map(|inp| self.try_select(gpu, inp, k))
            .collect()
    }

    /// Panicking convenience wrapper over [`Self::try_select`], kept
    /// for benches, examples, and tests where an error is a bug.
    ///
    /// # Panics
    /// On any [`TopKError`], with the error's message.
    fn select(&self, gpu: &mut dyn Backend, input: &DeviceBuffer<f32>, k: usize) -> TopKOutput {
        self.try_select(gpu, input, k)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Panicking convenience wrapper over [`Self::try_select_batch`].
    ///
    /// # Panics
    /// On any [`TopKError`], with the error's message.
    fn select_batch(
        &self,
        gpu: &mut dyn Backend,
        inputs: &[DeviceBuffer<f32>],
        k: usize,
    ) -> Vec<TopKOutput> {
        self.try_select_batch(gpu, inputs, k)
            .unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Validate common preconditions; algorithms call this first and
/// propagate the error with `?`.
#[must_use = "precondition failures are reported through the Result"]
pub fn check_args(alg: &dyn TopKAlgorithm, n: usize, k: usize) -> Result<(), TopKError> {
    match TopKError::check_k(alg.name(), n, k, alg.max_k()) {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Validate that every input in a batch has the same length as the
/// first; natively batched kernels require congruent problems.
pub fn check_batch(
    alg: &dyn TopKAlgorithm,
    inputs: &[DeviceBuffer<f32>],
) -> Result<usize, TopKError> {
    let Some(first) = inputs.first() else {
        return Err(TopKError::UnsupportedShape {
            algorithm: alg.name(),
            detail: "empty batch".into(),
        });
    };
    let n = first.len();
    if let Some(bad) = inputs.iter().find(|b| b.len() != n) {
        return Err(TopKError::UnsupportedShape {
            algorithm: alg.name(),
            detail: format!(
                "batched inputs must share one length, got {n} and {}",
                bad.len()
            ),
        });
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{BackendExt, Gpu};

    struct Dummy;
    impl TopKAlgorithm for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn category(&self) -> Category {
            Category::Sorting
        }
        fn max_k(&self) -> Option<usize> {
            Some(16)
        }
        fn try_select(
            &self,
            gpu: &mut dyn Backend,
            input: &DeviceBuffer<f32>,
            k: usize,
        ) -> Result<TopKOutput, TopKError> {
            check_args(self, input.len(), k)?;
            Ok(TopKOutput::new(
                gpu.try_alloc("v", k)?,
                gpu.try_alloc("i", k)?,
            ))
        }
    }

    #[test]
    fn category_names() {
        assert_eq!(Category::Sorting.name(), "Sorting");
        assert_eq!(Category::PartialSorting.name(), "Partial Sorting");
        assert_eq!(Category::PartitionBased.name(), "Partition-based");
    }

    #[test]
    fn default_batch_loops_sequentially() {
        let mut gpu = Gpu::new(gpu_sim::DeviceSpec::test_tiny());
        let inputs: Vec<_> = (0..3)
            .map(|i| gpu.htod(&format!("in{i}"), &[3.0f32, 1.0, 2.0]))
            .collect();
        let outs = Dummy.select_batch(&mut gpu, &inputs, 2);
        assert_eq!(outs.len(), 3);
    }

    #[test]
    fn check_args_enforces_max_k() {
        let mut gpu = Gpu::new(gpu_sim::DeviceSpec::test_tiny());
        let input = gpu.htod("in", &vec![0.0f32; 100]);
        let err = Dummy.try_select(&mut gpu, &input, 17).unwrap_err();
        assert!(
            matches!(err, TopKError::InvalidK { k: 17, .. }),
            "got {err:?}"
        );
        assert!(err.to_string().contains("exceeds supported max"));
    }

    #[test]
    fn check_args_rejects_zero_k() {
        let mut gpu = Gpu::new(gpu_sim::DeviceSpec::test_tiny());
        let input = gpu.htod("in", &[1.0f32]);
        let err = Dummy.try_select(&mut gpu, &input, 0).unwrap_err();
        assert!(err.to_string().contains("k must be >= 1"));
    }

    #[test]
    fn check_args_rejects_k_beyond_n() {
        let mut gpu = Gpu::new(gpu_sim::DeviceSpec::test_tiny());
        let input = gpu.htod("in", &[1.0f32, 2.0]);
        let err = Dummy.try_select(&mut gpu, &input, 3).unwrap_err();
        assert!(err.to_string().contains("exceeds input length"));
    }

    #[test]
    #[should_panic(expected = "k must be >= 1")]
    fn select_shim_panics_with_error_message() {
        let mut gpu = Gpu::new(gpu_sim::DeviceSpec::test_tiny());
        let input = gpu.htod("in", &[1.0f32]);
        let _ = Dummy.select(&mut gpu, &input, 0);
    }

    #[test]
    fn check_batch_rejects_empty_and_mismatched() {
        let mut gpu = Gpu::new(gpu_sim::DeviceSpec::test_tiny());
        let a = gpu.htod("a", &[1.0f32, 2.0]);
        let b = gpu.htod("b", &[1.0f32, 2.0, 3.0]);
        assert!(matches!(
            check_batch(&Dummy, &[]),
            Err(TopKError::UnsupportedShape { .. })
        ));
        assert!(matches!(
            check_batch(&Dummy, &[a.clone(), b]),
            Err(TopKError::UnsupportedShape { .. })
        ));
        assert_eq!(check_batch(&Dummy, &[a.clone(), a]).unwrap(), 2);
    }
}
