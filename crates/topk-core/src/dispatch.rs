//! Automatic algorithm dispatch — the production `select_k` entry
//! point.
//!
//! The paper closes §5.1 with usage guidelines:
//!
//! 1. to process data on-the-fly, use GridSelect;
//! 2. for large N and small K (< 256) the two contributions trade
//!    places depending on the distribution;
//! 3. in most other cases, use AIR Top-K.
//!
//! RAFT's `select_k` encodes the same study as a dispatch table (its
//! heuristic was fitted on exactly the benchmark this repository
//! reproduces). [`SelectK`] does likewise: small K on large inputs
//! goes to GridSelect, everything else to AIR Top-K, with the trivial
//! and small-N cases handled by AIR's internal fast paths.

use crate::air::AirTopK;
use crate::error::TopKError;
use crate::gridselect::{GridSelect, MAX_K as GRID_MAX_K};
use crate::traits::{check_args, check_batch, Category, TopKAlgorithm, TopKOutput};
use gpu_sim::{DeviceBuffer, Gpu};

/// Which algorithm the dispatcher picked (returned by
/// [`SelectK::choice`] so callers can log / assert the routing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Choice {
    /// Radix path: AIR Top-K.
    Air,
    /// Partial-sorting path: GridSelect.
    Grid,
}

/// Auto-dispatching top-K selector.
///
/// ```
/// use gpu_sim::{Gpu, DeviceSpec};
/// use topk_core::{dispatch::SelectK, TopKAlgorithm, verify_topk};
///
/// let mut gpu = Gpu::new(DeviceSpec::a100());
/// let data: Vec<f32> = (0..4096).map(|i| ((i * 37) % 4096) as f32).collect();
/// let input = gpu.htod("in", &data);
/// let out = SelectK::default().select(&mut gpu, &input, 10);
/// verify_topk(&data, 10, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
/// ```
pub struct SelectK {
    air: AirTopK,
    grid: GridSelect,
    /// K at or below which GridSelect is preferred on large inputs
    /// (the paper's guideline 2 uses 256; the measured crossover on
    /// this simulator sits in the same decade).
    pub small_k_threshold: usize,
    /// N above which the small-K rule applies (below it AIR's
    /// one-block fast path wins outright).
    pub large_n_threshold: usize,
}

impl Default for SelectK {
    fn default() -> Self {
        SelectK {
            air: AirTopK::default(),
            grid: GridSelect::default(),
            small_k_threshold: 256,
            large_n_threshold: 1 << 16,
        }
    }
}

impl SelectK {
    /// Build with custom component algorithms.
    pub fn new(air: AirTopK, grid: GridSelect) -> Self {
        SelectK {
            air,
            grid,
            ..SelectK::default()
        }
    }

    /// The routing decision for a problem shape, without running it.
    pub fn choice(&self, n: usize, k: usize, batch: usize) -> Choice {
        // Guideline 2/3: GridSelect for small K on large single
        // problems; AIR everywhere else. Batched workloads amortise
        // AIR's launches, moving the crossover down (§5.1's batch-100
        // results), so batching biases toward AIR.
        if k <= self.small_k_threshold
            && k <= GRID_MAX_K
            && n >= self.large_n_threshold
            && batch == 1
        {
            Choice::Grid
        } else {
            Choice::Air
        }
    }
}

impl TopKAlgorithm for SelectK {
    fn name(&self) -> &'static str {
        "SelectK (auto)"
    }

    fn category(&self) -> Category {
        Category::PartitionBased
    }

    fn try_select(
        &self,
        gpu: &mut Gpu,
        input: &DeviceBuffer<f32>,
        k: usize,
    ) -> Result<TopKOutput, TopKError> {
        check_args(self, input.len(), k)?;
        match self.choice(input.len(), k, 1) {
            Choice::Grid => self.grid.try_select(gpu, input, k),
            Choice::Air => self.air.try_select(gpu, input, k),
        }
    }

    fn try_select_batch(
        &self,
        gpu: &mut Gpu,
        inputs: &[DeviceBuffer<f32>],
        k: usize,
    ) -> Result<Vec<TopKOutput>, TopKError> {
        let n = check_batch(self, inputs)?;
        check_args(self, n, k)?;
        match self.choice(n, k, inputs.len()) {
            Choice::Grid => self.grid.try_select_batch(gpu, inputs, k),
            Choice::Air => self.air.try_select_batch(gpu, inputs, k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_topk;
    use datagen::{generate, Distribution};
    use gpu_sim::DeviceSpec;

    #[test]
    fn routing_follows_the_guidelines() {
        let s = SelectK::default();
        // Large N, small K, single problem -> GridSelect.
        assert_eq!(s.choice(1 << 22, 32, 1), Choice::Grid);
        assert_eq!(s.choice(1 << 22, 256, 1), Choice::Grid);
        // Large K -> AIR.
        assert_eq!(s.choice(1 << 22, 2048, 1), Choice::Air);
        assert_eq!(s.choice(1 << 22, 1 << 15, 1), Choice::Air);
        // Small N -> AIR (one-block fast path).
        assert_eq!(s.choice(4096, 32, 1), Choice::Air);
        // Batched -> AIR.
        assert_eq!(s.choice(1 << 22, 32, 100), Choice::Air);
    }

    #[test]
    fn dispatched_selection_is_correct_both_ways() {
        let s = SelectK::default();
        let mut gpu = Gpu::new(DeviceSpec::a100());
        for (n, k) in [(1 << 17, 32), (1 << 17, 4096), (2048, 7)] {
            let data = generate(Distribution::Normal, n, k as u64);
            let input = gpu.htod("in", &data);
            let out = s.select(&mut gpu, &input, k);
            verify_topk(&data, k, &out.values.to_vec(), &out.indices.to_vec())
                .unwrap_or_else(|e| panic!("n={n} k={k}: {e}"));
        }
    }

    #[test]
    fn dispatch_picks_the_faster_algorithm() {
        // The routing must actually pay off at its two poles.
        let time = |alg: &dyn TopKAlgorithm, data: &[f32], k: usize| {
            let mut gpu = Gpu::new(DeviceSpec::a100());
            let input = gpu.htod("in", data);
            gpu.reset_profile();
            let _ = alg.select(&mut gpu, &input, k);
            gpu.elapsed_us()
        };
        let s = SelectK::default();
        let data = generate(Distribution::Uniform, 1 << 21, 3);

        // Small K: dispatcher ~ GridSelect <= AIR.
        let auto = time(&s, &data, 32);
        let air = time(&AirTopK::default(), &data, 32);
        assert!(auto <= air * 1.05, "auto {auto} vs air {air} at K=32");

        // Large K: dispatcher ~ AIR <= GridSelect.
        let auto = time(&s, &data, 2048);
        let grid = time(&GridSelect::default(), &data, 2048);
        assert!(auto <= grid * 1.05, "auto {auto} vs grid {grid} at K=2048");
    }

    #[test]
    fn batch_dispatch_is_correct() {
        let s = SelectK::default();
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let datas: Vec<Vec<f32>> = (0..4)
            .map(|i| generate(Distribution::Uniform, 1 << 17, i))
            .collect();
        let inputs: Vec<_> = datas
            .iter()
            .enumerate()
            .map(|(i, d)| gpu.htod(&format!("p{i}"), d))
            .collect();
        let outs = s.select_batch(&mut gpu, &inputs, 32);
        for (d, o) in datas.iter().zip(&outs) {
            verify_topk(d, 32, &o.values.to_vec(), &o.indices.to_vec()).unwrap();
        }
    }
}
