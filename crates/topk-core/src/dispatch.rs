//! Automatic algorithm dispatch — the production `select_k` entry
//! point.
//!
//! Dispatch is two-tiered:
//!
//! * **Static prior.** The paper closes §5.1 with usage guidelines —
//!   GridSelect for small K on large single inputs, AIR Top-K in most
//!   other cases — and [`SelectK::choice`] encodes them verbatim (the
//!   same study RAFT's `select_k` dispatch table was fitted on). This
//!   is the zero-knowledge routing: correct on average, blind to value
//!   distribution and batch geometry.
//! * **Cost-model-guided tuner.** By default [`SelectK`] consults a
//!   [`Tuner`]: the problem shape — `(n, k,
//!   batch)` plus an optional [`DistSketch`] of the values — is priced
//!   against every viable configuration (AIR and
//!   [`RadiK`] at both digit widths,
//!   [`GridSelect`], the fused [`RowWiseTopK`](crate::rowwise)) using
//!   the simulator's own analytic roofline, and the cheapest plan wins.
//!   Plans are cached per quantised shape and self-correct as observed
//!   latencies flow back through [`SelectK::observe`]. The static prior
//!   remains both the fallback when tuning is disabled
//!   ([`SelectK::static_prior`]) and the safety net if a tuned
//!   configuration reports an unsupported shape.
//!
//! The sketch-aware entry points ([`SelectK::try_select_with_sketch`],
//! [`SelectK::try_select_batch_with_sketch`]) are what the serving
//! engine calls: a per-query distribution sketch routes adversarially
//! skewed inputs away from AIR's degenerate histogram passes and
//! many-small-row batches onto the single-launch row-wise path.

use crate::air::{AirConfig, AirTopK};
use crate::bucketed::BucketedTopK;
use crate::error::TopKError;
use crate::gridselect::{GridSelect, MAX_K as GRID_MAX_K};
use crate::radik::{RadiK, RadiKConfig};
use crate::rowwise::RowWiseTopK;
use crate::traits::{check_args, check_batch, Category, TopKAlgorithm, TopKOutput};
use crate::tuner::{DistSketch, Plan, ProblemShape, TunedAlgo, Tuner};
use crate::twostage::TwoStageTopK;
use gpu_sim::{Backend, DeviceBuffer, DeviceSpec};

/// Which algorithm the static prior picked (returned by
/// [`SelectK::choice`] so callers can log / assert the routing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Choice {
    /// Radix path: AIR Top-K.
    Air,
    /// Partial-sorting path: GridSelect.
    Grid,
}

/// Auto-dispatching top-K selector.
///
/// ```
/// use gpu_sim::{Gpu, DeviceSpec};
/// use topk_core::{dispatch::SelectK, TopKAlgorithm, verify_topk};
///
/// let mut gpu = Gpu::new(DeviceSpec::a100());
/// let data: Vec<f32> = (0..4096).map(|i| ((i * 37) % 4096) as f32).collect();
/// let input = gpu.htod("in", &data);
/// let out = SelectK::default().select(&mut gpu, &input, 10);
/// verify_topk(&data, 10, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
/// ```
pub struct SelectK {
    air: AirTopK,
    grid: GridSelect,
    radik: RadiK,
    rowwise: RowWiseTopK,
    tuner: Option<Tuner>,
    /// K at or below which GridSelect is preferred on large inputs
    /// (the paper's guideline 2 uses 256; the measured crossover on
    /// this simulator sits in the same decade).
    pub small_k_threshold: usize,
    /// N above which the small-K rule applies (below it AIR's
    /// one-block fast path wins outright).
    pub large_n_threshold: usize,
}

impl Default for SelectK {
    fn default() -> Self {
        SelectK {
            air: AirTopK::default(),
            grid: GridSelect::default(),
            radik: RadiK::default(),
            rowwise: RowWiseTopK::default(),
            tuner: Some(Tuner::new()),
            small_k_threshold: 256,
            large_n_threshold: 1 << 16,
        }
    }
}

impl SelectK {
    /// Build with custom component algorithms.
    pub fn new(air: AirTopK, grid: GridSelect) -> Self {
        SelectK {
            air,
            grid,
            ..SelectK::default()
        }
    }

    /// A dispatcher that uses only the static §5.1 guidelines — no
    /// plan table, no cost model. This is the pre-tuner behaviour and
    /// the baseline the benchmarks compare against.
    pub fn static_prior() -> Self {
        SelectK {
            tuner: None,
            ..SelectK::default()
        }
    }

    /// Seed the dispatcher with an existing tuner (for example one
    /// whose plan table was loaded from disk).
    pub fn with_tuner(tuner: Tuner) -> Self {
        SelectK {
            tuner: Some(tuner),
            ..SelectK::default()
        }
    }

    /// The tuner, if adaptive dispatch is enabled.
    pub fn tuner(&self) -> Option<&Tuner> {
        self.tuner.as_ref()
    }

    /// The static routing decision for a problem shape, without
    /// running it. This is the zero-knowledge prior; the tuned path
    /// may override it.
    pub fn choice(&self, n: usize, k: usize, batch: usize) -> Choice {
        // Guideline 2/3: GridSelect for small K on large single
        // problems; AIR everywhere else. Batched workloads amortise
        // AIR's launches, moving the crossover down (§5.1's batch-100
        // results), so batching biases toward AIR.
        if k <= self.small_k_threshold
            && k <= GRID_MAX_K
            && n >= self.large_n_threshold
            && batch == 1
        {
            Choice::Grid
        } else {
            Choice::Air
        }
    }

    /// The tuned plan for a shape, if adaptive dispatch is enabled.
    pub fn plan(&self, spec: &DeviceSpec, shape: &ProblemShape) -> Option<Plan> {
        self.tuner.as_ref().map(|t| t.plan(spec, shape))
    }

    /// Feed an observed latency back into the tuner (no-op for a
    /// static dispatcher). The serving engine calls this with measured
    /// per-query kernel time so mispredicted plans self-correct.
    pub fn observe(&self, spec: &DeviceSpec, shape: &ProblemShape, observed_us: f64) {
        if let Some(tuner) = &self.tuner {
            tuner.observe(spec, shape, observed_us);
        }
    }

    fn static_algo(&self, n: usize, k: usize, batch: usize) -> TunedAlgo {
        match self.choice(n, k, batch) {
            Choice::Air => TunedAlgo::Air {
                bits_per_pass: AirConfig::default().bits_per_pass,
            },
            Choice::Grid => TunedAlgo::Grid,
        }
    }

    fn route(&self, spec: &DeviceSpec, shape: &ProblemShape) -> TunedAlgo {
        match &self.tuner {
            Some(tuner) => tuner.plan(spec, shape).algo,
            None => self.static_algo(shape.n, shape.k, shape.batch),
        }
    }

    fn run_single(
        &self,
        algo: TunedAlgo,
        gpu: &mut dyn Backend,
        input: &DeviceBuffer<f32>,
        k: usize,
    ) -> Result<TopKOutput, TopKError> {
        match algo {
            TunedAlgo::Air { bits_per_pass } => {
                if bits_per_pass == AirConfig::default().bits_per_pass {
                    self.air.try_select(gpu, input, k)
                } else {
                    AirTopK::new(AirConfig {
                        bits_per_pass,
                        ..AirConfig::default()
                    })
                    .try_select(gpu, input, k)
                }
            }
            TunedAlgo::Grid => self.grid.try_select(gpu, input, k),
            TunedAlgo::RadiK { bits_per_pass } => {
                if bits_per_pass == RadiKConfig::default().bits_per_pass {
                    self.radik.try_select(gpu, input, k)
                } else {
                    RadiK::new(RadiKConfig {
                        bits_per_pass,
                        ..RadiKConfig::default()
                    })
                    .try_select(gpu, input, k)
                }
            }
            TunedAlgo::RowWise => self.rowwise.try_select(gpu, input, k),
            TunedAlgo::Bucketed { per_bucket } => {
                BucketedTopK::new(per_bucket as usize).try_select(gpu, input, k)
            }
            TunedAlgo::TwoStage {
                partitions,
                k_prime,
            } => TwoStageTopK::new(partitions as usize, k_prime as usize).try_select(gpu, input, k),
        }
    }

    fn run_batch(
        &self,
        algo: TunedAlgo,
        gpu: &mut dyn Backend,
        inputs: &[DeviceBuffer<f32>],
        k: usize,
    ) -> Result<Vec<TopKOutput>, TopKError> {
        match algo {
            TunedAlgo::Air { bits_per_pass } => {
                if bits_per_pass == AirConfig::default().bits_per_pass {
                    self.air.try_select_batch(gpu, inputs, k)
                } else {
                    AirTopK::new(AirConfig {
                        bits_per_pass,
                        ..AirConfig::default()
                    })
                    .try_select_batch(gpu, inputs, k)
                }
            }
            TunedAlgo::Grid => self.grid.try_select_batch(gpu, inputs, k),
            TunedAlgo::RadiK { bits_per_pass } => {
                if bits_per_pass == RadiKConfig::default().bits_per_pass {
                    self.radik.try_select_batch(gpu, inputs, k)
                } else {
                    RadiK::new(RadiKConfig {
                        bits_per_pass,
                        ..RadiKConfig::default()
                    })
                    .try_select_batch(gpu, inputs, k)
                }
            }
            TunedAlgo::RowWise => self.rowwise.try_select_batch(gpu, inputs, k),
            TunedAlgo::Bucketed { per_bucket } => {
                BucketedTopK::new(per_bucket as usize).try_select_batch(gpu, inputs, k)
            }
            TunedAlgo::TwoStage {
                partitions,
                k_prime,
            } => TwoStageTopK::new(partitions as usize, k_prime as usize)
                .try_select_batch(gpu, inputs, k),
        }
    }

    /// Single-problem selection with a caller-provided distribution
    /// sketch (see [`DistSketch::from_sample`]).
    pub fn try_select_with_sketch(
        &self,
        gpu: &mut dyn Backend,
        input: &DeviceBuffer<f32>,
        k: usize,
        sketch: DistSketch,
    ) -> Result<TopKOutput, TopKError> {
        check_args(self, input.len(), k)?;
        let shape = ProblemShape::new(input.len(), k, 1).with_sketch(sketch);
        let algo = self.route(gpu.spec(), &shape);
        match self.run_single(algo, gpu, input, k) {
            // The candidate gates make this unreachable in practice,
            // but if a tuned pick ever reports a shape it cannot
            // handle we fall back to the static prior rather than
            // failing the query.
            Err(TopKError::UnsupportedShape { .. } | TopKError::InvalidK { .. })
                if self.tuner.is_some() =>
            {
                let fallback = self.static_algo(input.len(), k, 1);
                self.run_single(fallback, gpu, input, k)
            }
            result => result,
        }
    }

    /// Batched selection with a caller-provided distribution sketch.
    pub fn try_select_batch_with_sketch(
        &self,
        gpu: &mut dyn Backend,
        inputs: &[DeviceBuffer<f32>],
        k: usize,
        sketch: DistSketch,
    ) -> Result<Vec<TopKOutput>, TopKError> {
        let n = check_batch(self, inputs)?;
        check_args(self, n, k)?;
        // Route on the *real* batch size: batching amortises launch
        // overhead differently for every algorithm, and collapsing it
        // to 1 here would silently re-route every coalesced query.
        let shape = ProblemShape::new(n, k, inputs.len()).with_sketch(sketch);
        let algo = self.route(gpu.spec(), &shape);
        match self.run_batch(algo, gpu, inputs, k) {
            Err(TopKError::UnsupportedShape { .. } | TopKError::InvalidK { .. })
                if self.tuner.is_some() =>
            {
                let fallback = self.static_algo(n, k, inputs.len());
                self.run_batch(fallback, gpu, inputs, k)
            }
            result => result,
        }
    }
}

impl TopKAlgorithm for SelectK {
    fn name(&self) -> &'static str {
        "SelectK (auto)"
    }

    fn category(&self) -> Category {
        Category::PartitionBased
    }

    fn try_select(
        &self,
        gpu: &mut dyn Backend,
        input: &DeviceBuffer<f32>,
        k: usize,
    ) -> Result<TopKOutput, TopKError> {
        self.try_select_with_sketch(gpu, input, k, DistSketch::uniform())
    }

    fn try_select_batch(
        &self,
        gpu: &mut dyn Backend,
        inputs: &[DeviceBuffer<f32>],
        k: usize,
    ) -> Result<Vec<TopKOutput>, TopKError> {
        self.try_select_batch_with_sketch(gpu, inputs, k, DistSketch::uniform())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_topk;
    use datagen::{generate, Distribution};
    use gpu_sim::{DeviceSpec, Gpu};

    #[test]
    fn routing_follows_the_guidelines() {
        let s = SelectK::default();
        // Large N, small K, single problem -> GridSelect.
        assert_eq!(s.choice(1 << 22, 32, 1), Choice::Grid);
        assert_eq!(s.choice(1 << 22, 256, 1), Choice::Grid);
        // Large K -> AIR.
        assert_eq!(s.choice(1 << 22, 2048, 1), Choice::Air);
        assert_eq!(s.choice(1 << 22, 1 << 15, 1), Choice::Air);
        // Small N -> AIR (one-block fast path).
        assert_eq!(s.choice(4096, 32, 1), Choice::Air);
        // Batched -> AIR.
        assert_eq!(s.choice(1 << 22, 32, 100), Choice::Air);
    }

    #[test]
    fn dispatched_selection_is_correct_both_ways() {
        let s = SelectK::default();
        let mut gpu = Gpu::new(DeviceSpec::a100());
        for (n, k) in [(1 << 17, 32), (1 << 17, 4096), (2048, 7)] {
            let data = generate(Distribution::Normal, n, k as u64);
            let input = gpu.htod("in", &data);
            let out = s.select(&mut gpu, &input, k);
            verify_topk(&data, k, &out.values.to_vec(), &out.indices.to_vec())
                .unwrap_or_else(|e| panic!("n={n} k={k}: {e}"));
        }
    }

    #[test]
    fn dispatch_picks_the_faster_algorithm() {
        // The routing must actually pay off at its two poles.
        let time = |alg: &dyn TopKAlgorithm, data: &[f32], k: usize| {
            let mut gpu = Gpu::new(DeviceSpec::a100());
            let input = gpu.htod("in", data);
            gpu.reset_profile();
            let _ = alg.select(&mut gpu, &input, k);
            gpu.elapsed_us()
        };
        let s = SelectK::default();
        let data = generate(Distribution::Uniform, 1 << 21, 3);

        // Small K: dispatcher ~ GridSelect <= AIR.
        let auto = time(&s, &data, 32);
        let air = time(&AirTopK::default(), &data, 32);
        assert!(auto <= air * 1.05, "auto {auto} vs air {air} at K=32");

        // Large K: dispatcher ~ AIR <= GridSelect.
        let auto = time(&s, &data, 2048);
        let grid = time(&GridSelect::default(), &data, 2048);
        assert!(auto <= grid * 1.05, "auto {auto} vs grid {grid} at K=2048");
    }

    #[test]
    fn batch_dispatch_is_correct() {
        let s = SelectK::default();
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let datas: Vec<Vec<f32>> = (0..4)
            .map(|i| generate(Distribution::Uniform, 1 << 17, i))
            .collect();
        let inputs: Vec<_> = datas
            .iter()
            .enumerate()
            .map(|(i, d)| gpu.htod(&format!("p{i}"), d))
            .collect();
        let outs = s.select_batch(&mut gpu, &inputs, 32);
        for (d, o) in datas.iter().zip(&outs) {
            verify_topk(d, 32, &o.values.to_vec(), &o.indices.to_vec()).unwrap();
        }
    }

    #[test]
    fn sketch_aware_dispatch_stays_correct_on_skew() {
        let s = SelectK::default();
        let mut gpu = Gpu::new(DeviceSpec::a100());
        for (n, k) in [(70_000, 64), (16 * 1024, 500), (1 << 18, 4096)] {
            let data = generate(Distribution::RadixAdversarial { m_bits: 24 }, n, 11);
            let sketch = DistSketch::from_sample(&data);
            let input = gpu.htod("in", &data);
            let out = s
                .try_select_with_sketch(&mut gpu, &input, k, sketch)
                .unwrap();
            verify_topk(&data, k, &out.values.to_vec(), &out.indices.to_vec())
                .unwrap_or_else(|e| panic!("n={n} k={k}: {e}"));
        }
    }

    #[test]
    fn tuned_dispatch_beats_static_on_adversarial_batches() {
        // A skewed, batched workload: the static prior routes it to
        // AIR, whose histogram passes degenerate on the shared prefix.
        // The tuner must find a materially faster plan.
        let n = 1 << 18;
        let k = 128;
        let batch = 8;
        let datas: Vec<Vec<f32>> = (0..batch)
            .map(|i| generate(Distribution::RadixAdversarial { m_bits: 24 }, n, i as u64))
            .collect();
        let sketch = DistSketch::from_sample(&datas[0]);
        assert!(sketch.dist_class() >= 2, "sketch: {sketch:?}");

        let time = |s: &SelectK| {
            let mut gpu = Gpu::new(DeviceSpec::a100());
            let inputs: Vec<_> = datas
                .iter()
                .enumerate()
                .map(|(i, d)| gpu.htod(&format!("p{i}"), d))
                .collect();
            gpu.reset_profile();
            let outs = s
                .try_select_batch_with_sketch(&mut gpu, &inputs, k, sketch)
                .unwrap();
            for (d, o) in datas.iter().zip(&outs) {
                verify_topk(d, k, &o.values.to_vec(), &o.indices.to_vec()).unwrap();
            }
            gpu.elapsed_us()
        };

        let static_us = time(&SelectK::static_prior());
        let tuned_us = time(&SelectK::default());
        assert!(
            tuned_us < static_us,
            "tuned {tuned_us:.1}µs vs static {static_us:.1}µs"
        );
    }

    #[test]
    fn unsupported_tuned_pick_falls_back_to_the_static_prior() {
        // Force a plan that is invalid for the actual shape by loading
        // a poisoned table: RowWise caps k at 2048, so a RowWise plan
        // for a k=4096 bucket must fall back rather than fail.
        let tuner = Tuner::new();
        let shape = ProblemShape::new(16 * 1024, 4096, 1);
        let key = crate::tuner::PlanKey::of(&shape);
        let mut table = crate::tuner::PlanTable::new();
        table.insert(
            key,
            Plan {
                algo: TunedAlgo::RowWise,
                predicted_us: 1.0,
                raw_us: 1.0,
            },
        );
        tuner.load_table_text(&table.to_text()).unwrap();
        let s = SelectK::with_tuner(tuner);

        let mut gpu = Gpu::new(DeviceSpec::a100());
        let data = generate(Distribution::Uniform, 16 * 1024, 5);
        let input = gpu.htod("in", &data);
        let out = s.select(&mut gpu, &input, 4096);
        verify_topk(&data, 4096, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
    }
}
