//! RTop-K-style fused row-wise top-K for batch-of-small-rows matrix
//! workloads.
//!
//! Neural-network serving shapes — row-wise top-K over a `rows × cols`
//! score matrix with small-to-medium rows — are the regime RTop-K
//! (PAPERS.md) targets: the whole selection for one row fits a single
//! thread block, so the right kernel reads the matrix *once*, keeps a
//! small candidate buffer in shared memory, and never touches device
//! memory again until it writes the K winners. Compare AIR Top-K's
//! one-block fast path, which stages the *entire row* in shared memory
//! and runs a full radix histogram per pass: for small rows the radix
//! prefix scans (`2^{b+1}` ops per pass) rival the row length itself,
//! and the `8·cols`-byte shared footprint caps how many rows co-reside
//! on an SM.
//!
//! [`RowWiseTopK`] instead streams each row through a running
//! *threshold filter*: an element enters the shared candidate buffer
//! only if it beats the current Kth-smallest candidate, and when the
//! buffer fills it is compacted back to K by an in-block partial
//! selection (counted in [`obs::AlgoCounters::rowwise_compactions`]).
//! The result is exact — the threshold is always the Kth smallest of
//! the candidates retained so far, so no top-K member is ever
//! rejected. One launch covers the whole batch, shared memory is
//! `O(K)` instead of `O(cols)`, and the compute cost is `~2` ops per
//! element plus the rare compactions.

use crate::air::Rows;
use crate::error::TopKError;
use crate::keys::{OrderedBits, RadixKey};
use crate::matrix::DeviceMatrix;
use crate::obs;
use crate::scratch::ScratchGuard;
use crate::traits::{check_args, check_batch, Category, TopKAlgorithm, TopKOutput};
use gpu_sim::{Backend, BackendExt, DeviceBuffer, Footprint, KernelContract, LaunchConfig};
use std::sync::atomic::Ordering::Relaxed;

/// Largest K the fused row-wise path supports: the candidate buffer
/// (2K entries, 8–12 bytes each) must fit comfortably in shared memory
/// alongside other resident blocks.
pub const ROWWISE_MAX_K: usize = 2048;

/// Tuning knobs for [`RowWiseTopK`].
#[derive(Debug, Clone)]
pub struct RowWiseConfig {
    /// Threads per block (one block serves one row).
    pub block_dim: usize,
    /// Minimum candidate-buffer capacity. The buffer holds
    /// `max(2K, min_buffer)` entries; a larger floor amortises
    /// compactions for tiny K at the price of shared memory.
    pub min_buffer: usize,
}

impl Default for RowWiseConfig {
    fn default() -> Self {
        RowWiseConfig {
            block_dim: 256,
            min_buffer: 1024,
        }
    }
}

/// The fused row-wise selector (RTop-K-style, see module docs).
///
/// ```
/// use gpu_sim::{Gpu, DeviceSpec};
/// use topk_core::{RowWiseTopK, TopKAlgorithm, verify_topk};
///
/// let mut gpu = Gpu::new(DeviceSpec::a100());
/// let data: Vec<f32> = (0..4096).map(|i| ((i * 97) % 4096) as f32).collect();
/// let input = gpu.htod("row", &data);
/// let out = RowWiseTopK::default().select(&mut gpu, &input, 16);
/// verify_topk(&data, 16, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct RowWiseTopK {
    cfg: RowWiseConfig,
}

impl Default for RowWiseTopK {
    fn default() -> Self {
        RowWiseTopK::new(RowWiseConfig::default())
    }
}

impl RowWiseTopK {
    /// Create with explicit configuration.
    pub fn new(cfg: RowWiseConfig) -> Self {
        assert!(cfg.block_dim >= 32, "block_dim below one warp");
        RowWiseTopK { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RowWiseConfig {
        &self.cfg
    }

    /// Candidate-buffer capacity used for a given K.
    pub fn buffer_capacity(&self, k: usize) -> usize {
        (2 * k).max(self.cfg.min_buffer)
    }

    /// Shared-memory bytes one block needs for a given K and key type.
    pub fn shared_bytes_for<T: RadixKey>(&self, k: usize) -> usize {
        // (ordered bits + index) per buffered candidate.
        self.buffer_capacity(k) * (std::mem::size_of::<T::Ordered>() + 4)
    }

    /// Matrix-shaped entry point: row-wise top-K over a contiguous
    /// `rows × cols` device matrix, outputs packed `rows × k`.
    pub fn run_matrix_typed<T: RadixKey>(
        &self,
        gpu: &mut dyn Backend,
        input: &DeviceMatrix<T>,
        k: usize,
    ) -> Result<(DeviceMatrix<T>, DeviceMatrix<u32>), TopKError> {
        let rows = input.rows();
        if rows < 1 {
            return Err(TopKError::UnsupportedShape {
                algorithm: self.name(),
                detail: "empty matrix".into(),
            });
        }
        let (out_val, out_idx) = self.run_rows(gpu, Rows::Matrix(input), k)?;
        Ok((
            DeviceMatrix::from_buffer(out_val, rows, k),
            DeviceMatrix::from_buffer(out_idx, rows, k),
        ))
    }

    /// The shared implementation: one kernel launch, one block per
    /// row, packed `batch × k` outputs.
    pub(crate) fn run_rows<T: RadixKey>(
        &self,
        gpu: &mut dyn Backend,
        inputs: Rows<'_, T>,
        k: usize,
    ) -> Result<(DeviceBuffer<T>, DeviceBuffer<u32>), TopKError> {
        let n = inputs.n();
        check_args(self, n, k)?;
        let cap = self.buffer_capacity(k);
        let shared_needed = self.shared_bytes_for::<T>(k);
        if shared_needed > gpu.spec().shared_mem_per_block {
            return Err(TopKError::UnsupportedShape {
                algorithm: self.name(),
                detail: format!(
                    "candidate buffer needs {shared_needed} shared bytes, device offers {}",
                    gpu.spec().shared_mem_per_block
                ),
            });
        }
        let batch = inputs.batch();

        let mut outs = ScratchGuard::new();
        let out_val = outs.alloc::<T>(gpu, "rowwise_out_val", batch * k)?;
        let out_idx = match outs.alloc::<u32>(gpu, "rowwise_out_idx", batch * k) {
            Ok(b) => b,
            Err(e) => {
                outs.release(gpu);
                return Err(e);
            }
        };

        let (ov, oi) = (out_val.clone(), out_idx.clone());
        let contract = inputs
            .declare_reads(KernelContract::new("rowwise_fused_kernel"))
            .writes(&ov, Footprint::per_block(k))
            .writes(&oi, Footprint::per_block(k))
            .uses_shared_mem(shared_needed);
        let launched = gpu.try_launch_checked(
            &contract,
            LaunchConfig::grid_1d(batch, self.cfg.block_dim),
            move |ctx| {
                let row = ctx.block_idx;
                let mut cand_bits = ctx.shared_alloc::<T::Ordered>(cap);
                let mut cand_idx = ctx.shared_alloc::<u32>(cap);
                let mut len = 0usize;
                // Admission threshold: the Kth smallest retained so
                // far, valid once the first compaction has run. Until
                // then every element is admitted (the buffer can hold
                // at least 2K, so the threshold exists before it can
                // ever be needed).
                let mut thr = T::Ordered::MAX;
                let mut have_thr = false;

                // Compact the buffer down to the K smallest, in place,
                // and return the new threshold. A real kernel does this
                // with an in-block bitonic partial sort; the metered
                // cost is linear in the buffer occupancy.
                let compact = |ctx: &mut gpu_sim::BlockCtx,
                               bits: &mut [T::Ordered],
                               idx: &mut [u32],
                               len: usize|
                 -> T::Ordered {
                    let mut pairs: Vec<(T::Ordered, u32)> =
                        (0..len).map(|i| (bits[i], idx[i])).collect();
                    pairs.select_nth_unstable(k - 1);
                    for (i, (b, x)) in pairs.iter().take(k).enumerate() {
                        bits[i] = *b;
                        idx[i] = *x;
                    }
                    ctx.ops(2 * len as u64);
                    obs::counters().rowwise_compactions.fetch_add(1, Relaxed);
                    pairs[k - 1].0
                };

                for i in 0..n {
                    let bits = inputs.ld(ctx, row, i).to_ordered();
                    ctx.ops(2); // ordered-bit transform + threshold compare
                    if !have_thr || bits < thr {
                        cand_bits[len] = bits;
                        cand_idx[len] = i as u32;
                        len += 1;
                        ctx.ops(1);
                        if len == cap {
                            thr = compact(ctx, &mut cand_bits, &mut cand_idx, len);
                            len = k;
                            have_thr = true;
                        }
                    }
                }
                if len > k {
                    compact(ctx, &mut cand_bits, &mut cand_idx, len);
                    len = k;
                }
                debug_assert_eq!(len, k, "k <= n guarantees a full result");
                for j in 0..k {
                    ctx.st(&ov, row * k + j, T::from_ordered(cand_bits[j]));
                    ctx.st(&oi, row * k + j, cand_idx[j]);
                }
            },
        );
        if let Err(e) = launched {
            outs.release(gpu);
            return Err(e.into());
        }
        Ok((out_val, out_idx))
    }
}

impl TopKAlgorithm for RowWiseTopK {
    fn name(&self) -> &'static str {
        "RowWise Top-K"
    }

    fn category(&self) -> Category {
        Category::PartialSorting
    }

    fn max_k(&self) -> Option<usize> {
        Some(ROWWISE_MAX_K)
    }

    fn try_select(
        &self,
        gpu: &mut dyn Backend,
        input: &DeviceBuffer<f32>,
        k: usize,
    ) -> Result<TopKOutput, TopKError> {
        let (v, i) = self.run_rows(gpu, Rows::Slices(std::slice::from_ref(input)), k)?;
        Ok(TopKOutput::new(v, i))
    }

    fn try_select_batch(
        &self,
        gpu: &mut dyn Backend,
        inputs: &[DeviceBuffer<f32>],
        k: usize,
    ) -> Result<Vec<TopKOutput>, TopKError> {
        let n = check_batch(self, inputs)?;
        check_args(self, n, k)?;
        let batch = inputs.len();
        let (out_val, out_idx) = self.run_rows(gpu, Rows::Slices(inputs), k)?;
        Ok((0..batch)
            .map(|p| {
                TopKOutput::new(
                    crate::air::slice_buffer(&out_val, p * k, k, "rowwise_values"),
                    crate::air::slice_buffer(&out_idx, p * k, k, "rowwise_indices"),
                )
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_topk;
    use datagen::Distribution;
    use gpu_sim::{DeviceSpec, Gpu};

    #[test]
    fn agrees_with_cpu_reference_on_all_distributions() {
        for dist in Distribution::benchmark_set() {
            for (n, k) in [(1000, 7), (4096, 64), (8192, 500), (2048, 2048)] {
                let data = datagen::generate(dist, n, (n + k) as u64);
                let mut gpu = Gpu::new(DeviceSpec::a100());
                let input = gpu.htod("in", &data);
                let out = RowWiseTopK::default().select(&mut gpu, &input, k);
                let (cpu_v, _) = topk_cpu::heap_topk(&data, k);
                let mut got = out.values.to_vec();
                let mut want = cpu_v;
                got.sort_by(f32::total_cmp);
                want.sort_by(f32::total_cmp);
                assert_eq!(got, want, "dist={} n={n} k={k}", dist.name());
                verify_topk(&data, k, &out.values.to_vec(), &out.indices.to_vec())
                    .unwrap_or_else(|e| panic!("dist={} n={n} k={k}: {e}", dist.name()));
            }
        }
    }

    #[test]
    fn adversarial_skew_is_exact() {
        for m_bits in [2u32, 10, 20, 31] {
            let dist = Distribution::RadixAdversarial { m_bits };
            let data = datagen::generate(dist, 6000, m_bits as u64);
            let mut gpu = Gpu::new(DeviceSpec::a100());
            let input = gpu.htod("in", &data);
            let out = RowWiseTopK::default().select(&mut gpu, &input, 100);
            verify_topk(&data, 100, &out.values.to_vec(), &out.indices.to_vec())
                .unwrap_or_else(|e| panic!("m_bits={m_bits}: {e}"));
        }
    }

    #[test]
    fn matrix_batch_is_one_launch() {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let (rows, cols, k) = (16, 2048, 32);
        let datas: Vec<Vec<f32>> = (0..rows)
            .map(|r| datagen::generate(Distribution::Normal, cols, r as u64))
            .collect();
        let flat: Vec<f32> = datas.iter().flatten().copied().collect();
        let m = DeviceMatrix::htod(&mut gpu, "m", &flat, rows, cols);
        gpu.reset_profile();
        let (vals, idxs) = RowWiseTopK::default()
            .run_matrix_typed(&mut gpu, &m, k)
            .unwrap();
        assert_eq!(gpu.timeline().kernel_count(), 1, "fused: one launch total");
        for (r, d) in datas.iter().enumerate() {
            verify_topk(d, k, &vals.row_to_vec(r), &idxs.row_to_vec(r))
                .unwrap_or_else(|e| panic!("row {r}: {e}"));
        }
    }

    #[test]
    fn beats_air_on_many_small_rows() {
        // The regime the fused path exists for: many rows just above
        // AIR's one-block threshold, where AIR needs its multi-pass
        // pipeline (≥ 2 full reads, 4 launches) but one block can
        // still stream a whole row through an O(K) candidate buffer
        // (1 read, 1 launch).
        let (rows, cols, k) = (256, 16_384, 64);
        let flat: Vec<f32> = (0..rows)
            .flat_map(|r| datagen::generate(Distribution::Uniform, cols, r as u64))
            .collect();

        let time = |run: &dyn Fn(&mut dyn Backend, &DeviceMatrix<f32>)| {
            let mut gpu = Gpu::new(DeviceSpec::a100());
            let m = DeviceMatrix::htod(&mut gpu, "m", &flat, rows, cols);
            gpu.reset_profile();
            run(&mut gpu, &m);
            gpu.elapsed_us()
        };
        let rowwise = time(&|gpu, m| {
            RowWiseTopK::default().run_matrix_typed(gpu, m, k).unwrap();
        });
        let air = time(&|gpu, m| {
            crate::AirTopK::default()
                .run_matrix_typed(gpu, m, k)
                .unwrap();
        });
        assert!(
            rowwise < air,
            "fused row-wise ({rowwise:.1} us) should beat AIR one-block ({air:.1} us)"
        );
    }

    #[test]
    fn rejects_k_beyond_cap_and_tiny_shared_memory() {
        let alg = RowWiseTopK::default();
        assert_eq!(alg.max_k(), Some(ROWWISE_MAX_K));
        let mut gpu = Gpu::new(DeviceSpec::test_tiny());
        // test_tiny has 16 KiB of shared memory; a 4096-entry buffer
        // (32 KiB) must be rejected up front, not crash the launch.
        let data: Vec<f32> = (0..4096).map(|i| i as f32).collect();
        let input = gpu.htod("in", &data);
        let err = alg.try_select(&mut gpu, &input, 2048).unwrap_err();
        assert!(matches!(err, TopKError::UnsupportedShape { .. }), "{err}");
    }

    #[test]
    fn compaction_counter_moves() {
        let before = obs::counters().snapshot();
        let mut gpu = Gpu::new(DeviceSpec::a100());
        // Descending input: every element is admitted, forcing
        // repeated compactions.
        let data: Vec<f32> = (0..20_000).map(|i| -(i as f32)).collect();
        let input = gpu.htod("in", &data);
        let out = RowWiseTopK::default().select(&mut gpu, &input, 8);
        verify_topk(&data, 8, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
        let d = obs::counters().snapshot().delta_since(&before);
        assert!(d.rowwise_compactions >= 1, "no compactions counted");
    }
}
