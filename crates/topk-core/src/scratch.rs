//! Workspace-allocation tracking for fallible selection paths.
//!
//! Algorithms allocate workspace, launch kernels, and free the
//! workspace before returning. With fallible entry points every `?`
//! between the allocation and the free is an exit that would leak
//! simulated device memory and silently distort `mem_allocated` for
//! the next query on the same device. [`ScratchGuard`] tracks the byte
//! total of a group of allocations so any exit path can release them
//! with one call, even after the typed buffer handles have been moved
//! into kernel closures.

use crate::error::TopKError;
use gpu_sim::{Backend, BackendExt, DeviceBuffer, DeviceScalar, ShadowToken};

/// Accumulates the byte total of a group of device allocations so they
/// can be released together on success *or* error.
///
/// ```
/// use gpu_sim::{Gpu, DeviceSpec};
/// use topk_core::scratch::ScratchGuard;
///
/// let mut gpu = Gpu::new(DeviceSpec::test_tiny());
/// let mut ws = ScratchGuard::new();
/// let before = gpu.mem_allocated();
/// let _hist = ws.alloc::<u32>(&mut gpu, "hist", 256).unwrap();
/// ws.release(&mut gpu); // error or success path, same call
/// assert_eq!(gpu.mem_allocated(), before);
/// ```
#[derive(Debug, Default)]
pub struct ScratchGuard {
    bytes: usize,
    /// Sanitizer shadows of the tracked buffers (empty when no
    /// sanitizer is armed); marked freed on release so stale-scratch
    /// reuse shows up as use-after-free.
    tokens: Vec<ShadowToken>,
}

impl ScratchGuard {
    /// An empty guard tracking no allocations.
    pub fn new() -> Self {
        ScratchGuard::default()
    }

    /// Allocate through the guard; the buffer's bytes are released
    /// when [`ScratchGuard::release`] runs.
    pub fn alloc<T: DeviceScalar>(
        &mut self,
        gpu: &mut dyn Backend,
        label: &str,
        len: usize,
    ) -> Result<DeviceBuffer<T>, TopKError> {
        let buf = gpu.try_alloc::<T>(label, len)?;
        self.bytes += buf.size_bytes();
        self.tokens.extend(buf.sanitizer_token());
        Ok(buf)
    }

    /// Track a buffer that was allocated elsewhere.
    pub fn adopt<T: DeviceScalar>(&mut self, buf: &DeviceBuffer<T>) {
        self.bytes += buf.size_bytes();
        self.tokens.extend(buf.sanitizer_token());
    }

    /// Bytes currently tracked.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Release every tracked byte back to the device allocator. Under
    /// the sanitizer's memcheck, any later access to a released buffer
    /// is reported as a use-after-free.
    pub fn release(self, gpu: &mut dyn Backend) {
        for token in &self.tokens {
            token.mark_freed();
        }
        gpu.free_bytes(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{DeviceSpec, Gpu};

    #[test]
    fn release_returns_all_tracked_bytes() {
        let mut gpu = Gpu::new(DeviceSpec::test_tiny());
        let base = gpu.mem_allocated();
        let mut ws = ScratchGuard::new();
        let _a = ws.alloc::<u32>(&mut gpu, "a", 100).unwrap();
        let _b = ws.alloc::<f32>(&mut gpu, "b", 50).unwrap();
        let outside = gpu.try_alloc::<u32>("c", 10).unwrap();
        ws.adopt(&outside);
        assert_eq!(ws.bytes(), 100 * 4 + 50 * 4 + 10 * 4);
        ws.release(&mut gpu);
        assert_eq!(gpu.mem_allocated(), base);
    }

    #[test]
    fn failed_alloc_leaves_prior_tracking_intact() {
        let mut gpu = Gpu::new(DeviceSpec::test_tiny());
        let base = gpu.mem_allocated();
        let mut ws = ScratchGuard::new();
        let _a = ws.alloc::<u32>(&mut gpu, "a", 64).unwrap();
        let huge = gpu.spec().device_mem_bytes;
        assert!(ws.alloc::<u32>(&mut gpu, "too-big", huge).is_err());
        ws.release(&mut gpu);
        assert_eq!(gpu.mem_allocated(), base, "error path must not leak");
    }
}
