//! Correctness verification for top-K outputs.
//!
//! The paper's benchmark only records results "that passed the
//! correctness verification" (§5.1). This module provides the strict
//! checker used throughout the test-suite and harness: the returned
//! values must be exactly the multiset of the K smallest input elements
//! (ties resolved by *count*, not by position), and each index must
//! point at its value without duplication.
//!
//! Floats are compared in the order-preserving bit domain
//! ([`crate::keys::RadixKey::to_ordered`]) so that `-0.0 < +0.0` and
//! infinities order correctly; NaNs are rejected outright (the paper's
//! algorithms assume NaN-free input).

use crate::keys::RadixKey;

/// Why a verification failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// Output length differs from K.
    WrongLength {
        /// Expected K.
        expected: usize,
        /// Values returned.
        got: usize,
    },
    /// An index is out of `[0, N)`.
    IndexOutOfRange {
        /// Offending index value.
        index: u32,
    },
    /// The same input position was returned twice.
    DuplicateIndex {
        /// The duplicated position.
        index: u32,
    },
    /// `input[indices[i]] != values[i]` (bitwise).
    IndexValueMismatch {
        /// Output slot at fault.
        slot: usize,
    },
    /// The returned value multiset is not the K smallest.
    WrongMultiset,
    /// Input or output contains NaN.
    NaN,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::WrongLength { expected, got } => {
                write!(f, "expected {expected} results, got {got}")
            }
            VerifyError::IndexOutOfRange { index } => write!(f, "index {index} out of range"),
            VerifyError::DuplicateIndex { index } => write!(f, "index {index} returned twice"),
            VerifyError::IndexValueMismatch { slot } => {
                write!(f, "values[{slot}] != input[indices[{slot}]]")
            }
            VerifyError::WrongMultiset => write!(f, "returned values are not the K smallest"),
            VerifyError::NaN => write!(f, "NaN encountered"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Reference top-K: sort a copy, return the K smallest values (in
/// ascending order) with matching indices. Ties keep the
/// smallest-index occurrences, but callers must not rely on *which*
/// tied index is returned — [`verify_topk`] doesn't.
pub fn reference_topk(input: &[f32], k: usize) -> (Vec<f32>, Vec<u32>) {
    assert!(k <= input.len());
    let mut order: Vec<u32> = (0..input.len() as u32).collect();
    order.sort_unstable_by_key(|&i| (input[i as usize].to_ordered(), i));
    order.truncate(k);
    let values = order.iter().map(|&i| input[i as usize]).collect();
    (values, order)
}

/// Verify a top-K output against the input (see module docs for the
/// contract). `values`/`indices` come from the algorithm under test.
pub fn verify_topk(
    input: &[f32],
    k: usize,
    values: &[f32],
    indices: &[u32],
) -> Result<(), VerifyError> {
    if input.iter().any(|v| v.is_nan()) || values.iter().any(|v| v.is_nan()) {
        return Err(VerifyError::NaN);
    }
    verify_topk_typed(input, k, values, indices)
}

/// Generic-key verifier: same contract as [`verify_topk`] for any
/// [`RadixKey`] type (integers, 64-bit floats, …). Float NaN screening
/// is the f32 wrapper's job; this function treats keys purely through
/// their ordered bits.
pub fn verify_topk_typed<T: RadixKey>(
    input: &[T],
    k: usize,
    values: &[T],
    indices: &[u32],
) -> Result<(), VerifyError> {
    if values.len() != k || indices.len() != k {
        return Err(VerifyError::WrongLength {
            expected: k,
            got: values.len().min(indices.len()),
        });
    }

    // Index validity: in-range, unique, pointing at the claimed value.
    let mut seen = vec![false; input.len()];
    for (slot, (&v, &i)) in values.iter().zip(indices).enumerate() {
        let iu = i as usize;
        if iu >= input.len() {
            return Err(VerifyError::IndexOutOfRange { index: i });
        }
        if seen[iu] {
            return Err(VerifyError::DuplicateIndex { index: i });
        }
        seen[iu] = true;
        if input[iu].to_ordered() != v.to_ordered() {
            return Err(VerifyError::IndexValueMismatch { slot });
        }
    }

    // Multiset check in the ordered-bit domain.
    let mut got: Vec<T::Ordered> = values.iter().map(|v| v.to_ordered()).collect();
    got.sort_unstable();
    let mut expect: Vec<T::Ordered> = input.iter().map(|v| v.to_ordered()).collect();
    expect.sort_unstable();
    expect.truncate(k);
    if got != expect {
        return Err(VerifyError::WrongMultiset);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_is_sorted_and_indexed() {
        let input = [5.0f32, 1.0, 4.0, 1.5, -2.0];
        let (v, i) = reference_topk(&input, 3);
        assert_eq!(v, vec![-2.0, 1.0, 1.5]);
        assert_eq!(i, vec![4, 1, 3]);
    }

    #[test]
    fn accepts_correct_output_any_order() {
        let input = [5.0f32, 1.0, 4.0, 1.5, -2.0];
        assert!(verify_topk(&input, 3, &[1.5, -2.0, 1.0], &[3, 4, 1]).is_ok());
    }

    #[test]
    fn accepts_either_tie() {
        let input = [2.0f32, 1.0, 2.0, 3.0];
        // K = 2: {1.0, 2.0} where the 2.0 may come from index 0 or 2.
        assert!(verify_topk(&input, 2, &[1.0, 2.0], &[1, 0]).is_ok());
        assert!(verify_topk(&input, 2, &[2.0, 1.0], &[2, 1]).is_ok());
    }

    #[test]
    fn rejects_duplicate_index_even_with_tied_values() {
        let input = [2.0f32, 1.0, 2.0, 3.0];
        assert_eq!(
            verify_topk(&input, 2, &[1.0, 1.0], &[1, 1]),
            Err(VerifyError::DuplicateIndex { index: 1 })
        );
    }

    #[test]
    fn rejects_wrong_multiset() {
        let input = [5.0f32, 1.0, 4.0, 1.5, -2.0];
        assert_eq!(
            verify_topk(&input, 2, &[1.0, 1.5], &[1, 3]),
            Err(VerifyError::WrongMultiset)
        );
    }

    #[test]
    fn rejects_value_index_mismatch() {
        let input = [5.0f32, 1.0, 4.0];
        assert_eq!(
            verify_topk(&input, 1, &[1.0], &[0]),
            Err(VerifyError::IndexValueMismatch { slot: 0 })
        );
    }

    #[test]
    fn rejects_out_of_range_and_length() {
        let input = [5.0f32, 1.0];
        assert_eq!(
            verify_topk(&input, 1, &[1.0], &[9]),
            Err(VerifyError::IndexOutOfRange { index: 9 })
        );
        assert!(matches!(
            verify_topk(&input, 2, &[1.0], &[1]),
            Err(VerifyError::WrongLength { .. })
        ));
    }

    #[test]
    fn negative_zero_ranks_below_positive_zero() {
        let input = [0.0f32, -0.0, 1.0];
        let (v, i) = reference_topk(&input, 1);
        assert_eq!(i, vec![1]);
        assert_eq!(v[0].to_bits(), (-0.0f32).to_bits());
        // Returning +0.0 (index 0) for K = 1 is *wrong*: -0.0 < +0.0 in
        // the total order the radix algorithms implement.
        assert_eq!(
            verify_topk(&input, 1, &[0.0], &[0]),
            Err(VerifyError::WrongMultiset)
        );
    }

    #[test]
    fn infinities_are_legal_values() {
        let input = [f32::INFINITY, f32::NEG_INFINITY, 0.0];
        assert!(verify_topk(&input, 2, &[f32::NEG_INFINITY, 0.0], &[1, 2]).is_ok());
    }

    #[test]
    fn nan_is_rejected() {
        let input = [f32::NAN, 1.0];
        assert_eq!(verify_topk(&input, 1, &[1.0], &[1]), Err(VerifyError::NaN));
    }

    #[test]
    fn k_equals_n_returns_everything() {
        let input = [3.0f32, 1.0, 2.0];
        let (v, i) = reference_topk(&input, 3);
        assert!(verify_topk(&input, 3, &v, &i).is_ok());
    }

    #[test]
    fn typed_verifier_on_integer_and_64_bit_keys() {
        let input: Vec<u64> = vec![50, 10, 40, 10, 30];
        assert!(verify_topk_typed(&input, 2, &[10u64, 10], &[1, 3]).is_ok());
        assert_eq!(
            verify_topk_typed(&input, 2, &[10u64, 30], &[1, 4]),
            Err(VerifyError::WrongMultiset)
        );
        let input: Vec<i64> = vec![-5, 3, -9, 0];
        assert!(verify_topk_typed(&input, 2, &[-9i64, -5], &[2, 0]).is_ok());
        let input: Vec<f64> = vec![1.5, -2.5, 0.0, -0.0];
        assert!(verify_topk_typed(&input, 2, &[-2.5f64, -0.0], &[1, 3]).is_ok());
        // +0.0 instead of -0.0 is the wrong multiset in the total order.
        assert_eq!(
            verify_topk_typed(&input, 2, &[-2.5f64, 0.0], &[1, 2]),
            Err(VerifyError::WrongMultiset)
        );
    }

    #[test]
    fn typed_and_f32_verifiers_agree() {
        let input = [3.0f32, 1.0, 2.0, 1.0];
        let (v, i) = reference_topk(&input, 3);
        assert!(verify_topk(&input, 3, &v, &i).is_ok());
        assert!(verify_topk_typed(&input, 3, &v, &i).is_ok());
    }

    #[test]
    fn display_messages() {
        assert!(VerifyError::WrongMultiset.to_string().contains("smallest"));
        assert!(VerifyError::NaN.to_string().contains("NaN"));
    }
}
