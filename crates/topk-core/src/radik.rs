//! RadiK-style skew-resistant radix top-K: adaptive digit ordering +
//! histogram equalization (PAPERS.md).
//!
//! AIR Top-K's fixed most-significant-digit grid degenerates under
//! skew: when keys share their top `m` ordered bits (the §3.2
//! adversarial distribution, or any sharply peaked serving workload),
//! the first `⌊m/b⌋` passes histogram everything into a single bucket —
//! a full `N`-element sweep each that eliminates nobody. RadiK's
//! counter is to *choose the bit window per pass from the data*:
//!
//! 1. **Sketch pass.** One cheap min/max reduction over the input
//!    gives the global common prefix; the first real round starts
//!    directly below it, so shared leading bits are never
//!    histogrammed at all.
//! 2. **Adaptive digit ordering.** Every round additionally tracks the
//!    min/max of the candidates it scans. Its last finishing block
//!    extends the next round's bit offset past any bits the survivors
//!    provably share (`common_prefix_len_of`), so each histogram
//!    always spans bits that actually discriminate — the histogram
//!    equalization effect: buckets stay balanced instead of collapsing
//!    into one.
//!
//! Everything else deliberately mirrors [`crate::air`]: iteration-fused
//! rounds (previous round's filtering + this round's histogram in one
//! sweep), on-device prefix sums by the last finishing block, adaptive
//! candidate buffering with the same `C·α < N` rule, early stopping,
//! and batch striping. On uniform data the sketch is pure overhead
//! (one extra `N`-read) — which is exactly the trade the
//! [`crate::tuner`] cost model arbitrates.
//!
//! Skip telemetry lands in [`obs::AlgoCounters::radik_rounds`] and
//! [`obs::AlgoCounters::radik_skipped_bits`].

use crate::air::{Rows, ONE_BLOCK_THRESHOLD};
use crate::error::TopKError;
use crate::keys::{common_prefix_len_of, digit_at, num_passes_of, OrderedBits, RadixKey};
use crate::obs;
use crate::scratch::ScratchGuard;
use crate::traits::{check_args, Category, TopKAlgorithm, TopKOutput, TypedOutput};
use gpu_sim::{Backend, BackendExt, DeviceBuffer, Footprint, KernelContract, LaunchConfig};
use std::sync::atomic::Ordering::Relaxed;

/// Tuning knobs for [`RadiK`]. Defaults match [`crate::air::AirConfig`]
/// so head-to-head comparisons isolate the adaptive digit ordering.
#[derive(Debug, Clone)]
pub struct RadiKConfig {
    /// Maximum digit width in bits (a round's actual width shrinks
    /// when fewer bits remain below its offset).
    pub bits_per_pass: u32,
    /// Buffering threshold α (same rule as AIR §3.2: buffer candidates
    /// only when `C·α < N`).
    pub alpha: usize,
    /// Enable adaptive candidate buffering.
    pub adaptive: bool,
    /// Enable early stopping.
    pub early_stop: bool,
    /// Threads per block.
    pub block_dim: usize,
    /// Input elements each thread processes per round.
    pub items_per_thread: usize,
}

impl Default for RadiKConfig {
    fn default() -> Self {
        RadiKConfig {
            bits_per_pass: 11,
            alpha: 128,
            adaptive: true,
            early_stop: true,
            block_dim: 512,
            items_per_thread: 16,
        }
    }
}

// Control-block slot offsets (per problem). Superset of AIR's: TIES
// marks that the surviving candidates are exact duplicates on the full
// key, so the next kernel admits by rank instead of digit.
const K_REM: usize = 0;
const SRC_BUFFERED: usize = 1;
const SRC_COUNT: usize = 2;
const STORE_CUR: usize = 3;
const EARLY: usize = 4;
const TIES: usize = 5;
const FINISHED: usize = 6;
const OUT_CURSOR: usize = 7;
const TIE_CURSOR: usize = 8;
const CTRL_FIXED: usize = 9;
// Then per round r: TARGET[r] (R slots), OFFSET[r] (R+1 slots, in
// bits from the MSB), BUF_CURSOR[r] (R slots).

/// RadiK-style skew-resistant radix top-K (see module docs).
///
/// ```
/// use gpu_sim::{Gpu, DeviceSpec};
/// use topk_core::{RadiK, TopKAlgorithm, verify_topk};
///
/// let mut gpu = Gpu::new(DeviceSpec::a100());
/// // Adversarial skew: all values share their top ordered bits.
/// let data = datagen::generate(
///     datagen::Distribution::RadixAdversarial { m_bits: 20 }, 50_000, 7);
/// let input = gpu.htod("scores", &data);
/// let out = RadiK::default().select(&mut gpu, &input, 25);
/// verify_topk(&data, 25, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct RadiK {
    cfg: RadiKConfig,
    /// Small problems don't amortise a sketch pass; they delegate to
    /// AIR's one-block fast path unchanged.
    inner: crate::air::AirTopK,
}

impl Default for RadiK {
    fn default() -> Self {
        RadiK::new(RadiKConfig::default())
    }
}

impl RadiK {
    /// Create with explicit configuration.
    pub fn new(cfg: RadiKConfig) -> Self {
        assert!(
            (1..=16).contains(&cfg.bits_per_pass),
            "bits_per_pass must be in 1..=16"
        );
        assert!(cfg.alpha >= 4, "alpha below its lower bound of 4");
        let inner = crate::air::AirTopK::new(crate::air::AirConfig {
            bits_per_pass: cfg.bits_per_pass,
            alpha: cfg.alpha,
            adaptive: cfg.adaptive,
            early_stop: cfg.early_stop,
            block_dim: cfg.block_dim,
            items_per_thread: cfg.items_per_thread,
        });
        RadiK { cfg, inner }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RadiKConfig {
        &self.cfg
    }

    /// Generic-key batched selection, packed per-problem outputs.
    pub fn run_batch_typed<T>(
        &self,
        gpu: &mut dyn Backend,
        inputs: &[DeviceBuffer<T>],
        k: usize,
    ) -> Result<Vec<TypedOutput<T>>, TopKError>
    where
        T: RadixKey,
        T::Ordered: gpu_sim::DeviceScalar,
    {
        let Some(first) = inputs.first() else {
            return Err(TopKError::UnsupportedShape {
                algorithm: self.name(),
                detail: "empty batch".into(),
            });
        };
        let n = first.len();
        if let Some(bad) = inputs.iter().find(|b| b.len() != n) {
            return Err(TopKError::UnsupportedShape {
                algorithm: self.name(),
                detail: format!(
                    "batched inputs must share one length, got {n} and {}",
                    bad.len()
                ),
            });
        }
        let batch = inputs.len();
        let (out_val, out_idx) = self.run_rows(gpu, Rows::Slices(inputs), k)?;
        let width = out_val.len() / batch;
        Ok((0..batch)
            .map(|p| {
                (
                    crate::air::slice_buffer(&out_val, p * width, width, "radik_values"),
                    crate::air::slice_buffer(&out_idx, p * width, width, "radik_indices"),
                )
            })
            .collect())
    }

    /// Matrix-shaped batched selection (packed `rows × k` outputs).
    pub fn run_matrix_typed<T>(
        &self,
        gpu: &mut dyn Backend,
        input: &crate::matrix::DeviceMatrix<T>,
        k: usize,
    ) -> Result<
        (
            crate::matrix::DeviceMatrix<T>,
            crate::matrix::DeviceMatrix<u32>,
        ),
        TopKError,
    >
    where
        T: RadixKey,
        T::Ordered: gpu_sim::DeviceScalar,
    {
        let rows = input.rows();
        if rows < 1 {
            return Err(TopKError::UnsupportedShape {
                algorithm: self.name(),
                detail: "empty matrix".into(),
            });
        }
        let (out_val, out_idx) = self.run_rows(gpu, Rows::Matrix(input), k)?;
        let width = out_val.len() / rows;
        Ok((
            crate::matrix::DeviceMatrix::from_buffer(out_val, rows, width),
            crate::matrix::DeviceMatrix::from_buffer(out_idx, rows, width),
        ))
    }

    fn run_rows<T>(
        &self,
        gpu: &mut dyn Backend,
        inputs: Rows<'_, T>,
        k: usize,
    ) -> Result<(DeviceBuffer<T>, DeviceBuffer<u32>), TopKError>
    where
        T: RadixKey,
        T::Ordered: gpu_sim::DeviceScalar,
    {
        let n = inputs.n();
        check_args(self, n, k)?;
        if k == n || n <= ONE_BLOCK_THRESHOLD {
            // The sketch pass can't pay for itself here; AIR's trivial
            // and one-block paths are already optimal.
            return match inputs {
                Rows::Slices(v) => {
                    let outs = self.inner.run_batch_typed(gpu, v, k)?;
                    Ok(repack(outs, k))
                }
                Rows::Matrix(m) => {
                    let (vals, idxs) = self.inner.run_matrix_typed(gpu, m, k)?;
                    Ok((vals.buffer().clone(), idxs.buffer().clone()))
                }
            };
        }
        let mut ws = ScratchGuard::new();
        let mut outs = ScratchGuard::new();
        let r = self.run_rows_multi_round(gpu, &mut ws, &mut outs, inputs, k);
        ws.release(gpu);
        if r.is_err() {
            outs.release(gpu);
        }
        r
    }

    /// The sketch + adaptive-round pipeline (the interesting path).
    #[allow(clippy::too_many_lines)]
    fn run_rows_multi_round<T>(
        &self,
        gpu: &mut dyn Backend,
        ws: &mut ScratchGuard,
        outs: &mut ScratchGuard,
        inputs: Rows<'_, T>,
        k: usize,
    ) -> Result<(DeviceBuffer<T>, DeviceBuffer<u32>), TopKError>
    where
        T: RadixKey,
        T::Ordered: gpu_sim::DeviceScalar,
    {
        let n = inputs.n();
        let b = self.cfg.bits_per_pass;
        let bits = <T::Ordered as OrderedBits>::BITS;
        // Offsets advance ≥ b bits per round, so AIR's pass count is
        // an upper bound on the rounds ever needed.
        let rounds = num_passes_of::<T::Ordered>(b) as usize;
        let radix = 1usize << b;
        let batch = inputs.batch();
        let ctrl_stride = CTRL_FIXED + 3 * rounds + 1;
        let target_off = CTRL_FIXED;
        let offset_off = CTRL_FIXED + rounds;
        let bufcur_off = CTRL_FIXED + 2 * rounds + 1;

        let chunk = self.cfg.block_dim * self.cfg.items_per_thread;
        let blocks_per_problem = n.div_ceil(chunk).max(1);
        let grid = batch * blocks_per_problem;
        let launch = LaunchConfig::grid_1d(grid, self.cfg.block_dim);
        let cap = if self.cfg.adaptive {
            (n / self.cfg.alpha).max(1)
        } else {
            n
        };

        let ctrl = ws.alloc::<u32>(gpu, "radik_ctrl", batch * ctrl_stride)?;
        // Accumulated candidate prefix *value* after each round; u64 so
        // 64-bit keys fit (the prefix can reach the full key width).
        let pvals = ws.alloc::<u64>(gpu, "radik_pvals", batch * (rounds + 1))?;
        // Global min/max (sketch) and per-round scanned-candidate
        // min/max, in the ordered-bit domain.
        let gmin = ws.alloc::<T::Ordered>(gpu, "radik_gmin", batch)?;
        let gmax = ws.alloc::<T::Ordered>(gpu, "radik_gmax", batch)?;
        let minb = ws.alloc::<T::Ordered>(gpu, "radik_minb", batch * rounds)?;
        let maxb = ws.alloc::<T::Ordered>(gpu, "radik_maxb", batch * rounds)?;
        let hist = ws.alloc::<u32>(gpu, "radik_hist", batch * rounds * radix)?;
        let sketch_done = ws.alloc::<u32>(gpu, "radik_sketch_done", batch)?;
        let done = ws.alloc::<u32>(gpu, "radik_done", batch * rounds)?;
        let buf_val = [
            ws.alloc::<T>(gpu, "radik_buf_val0", batch * cap)?,
            ws.alloc::<T>(gpu, "radik_buf_val1", batch * cap)?,
        ];
        let buf_idx = [
            ws.alloc::<u32>(gpu, "radik_buf_idx0", batch * cap)?,
            ws.alloc::<u32>(gpu, "radik_buf_idx1", batch * cap)?,
        ];
        let out_val = outs.alloc::<T>(gpu, "radik_out_val", batch * k)?;
        let out_idx = outs.alloc::<u32>(gpu, "radik_out_idx", batch * k)?;

        ctrl.fill(0);
        hist.fill(0);
        done.fill(0);
        sketch_done.fill(0);
        gmin.fill(<T::Ordered as OrderedBits>::MAX);
        gmax.fill(<T::Ordered as OrderedBits>::ZERO);
        minb.fill(<T::Ordered as OrderedBits>::MAX);
        maxb.fill(<T::Ordered as OrderedBits>::ZERO);
        let adaptive = self.cfg.adaptive;
        let early_stop = self.cfg.early_stop;
        let alpha = self.cfg.alpha;

        // ---- sketch pass: global min/max → starting offset ---------
        let contract = inputs
            .declare_reads(KernelContract::new("radik_sketch_kernel"))
            .coordinates(&gmin, Footprint::per_group(blocks_per_problem, 1))
            .coordinates(&gmax, Footprint::per_group(blocks_per_problem, 1))
            .atomics(&sketch_done, Footprint::per_group(blocks_per_problem, 1))
            .writes_shared(&ctrl, Footprint::per_group(blocks_per_problem, ctrl_stride))
            .writes_shared(&pvals, Footprint::per_group(blocks_per_problem, rounds + 1));
        gpu.try_launch_checked(&contract, launch, |ctx| {
            let prob = ctx.block_idx / blocks_per_problem;
            let blk = ctx.block_idx % blocks_per_problem;
            let start = blk * chunk;
            let end = (start + chunk).min(n);
            if start < end {
                let mut mn = inputs.ld(ctx, prob, start).to_ordered();
                let mut mx = mn;
                for i in start + 1..end {
                    let o = inputs.ld(ctx, prob, i).to_ordered();
                    mn = mn.min(o);
                    mx = mx.max(o);
                    ctx.ops(3);
                }
                // Raw unsigned min/max on ordered bits == value order.
                ctx.atomic_min_raw(&gmin, prob, mn);
                ctx.atomic_max_raw(&gmax, prob, mx);
            }
            let prev = ctx.atomic_add_sync(&sketch_done, prob, 1);
            if prev + 1 == blocks_per_problem as u32 {
                let mn = ctx.ld(&gmin, prob);
                let mx = ctx.ld(&gmax, prob);
                // Clamp below the key width: a zero-width round-0
                // digit would be meaningless (all-identical inputs
                // still take one 1-bit round and resolve as ties).
                let cp = common_prefix_len_of::<T::Ordered>(mn, mx).min(bits - 1);
                ctx.st(&ctrl, prob * ctrl_stride + offset_off, cp);
                ctx.st(
                    &pvals,
                    prob * (rounds + 1),
                    if cp == 0 {
                        0
                    } else {
                        mn.shr(bits - cp).to_u64()
                    },
                );
                ctx.ops(4);
                if cp > 0 {
                    obs::counters()
                        .radik_skipped_bits
                        .fetch_add(cp as u64, Relaxed);
                }
            }
        })?;

        // ---- the fused rounds ---------------------------------------
        for round in 0..rounds {
            let kernel = |ctx: &mut gpu_sim::BlockCtx| {
                let prob = ctx.block_idx / blocks_per_problem;
                let blk = ctx.block_idx % blocks_per_problem;
                let cb = prob * ctrl_stride;

                if ctx.ld(&ctrl, cb + FINISHED) != 0 {
                    return;
                }

                let early = round > 0 && ctx.ld(&ctrl, cb + EARLY) != 0;
                let ties = round > 0 && ctx.ld(&ctrl, cb + TIES) != 0;
                let src_is_buf = round > 0 && ctx.ld(&ctrl, cb + SRC_BUFFERED) != 0;
                let n_src = if src_is_buf {
                    ctx.ld(&ctrl, cb + SRC_COUNT) as usize
                } else {
                    n
                };
                let store = !early && !ties && round > 0 && ctx.ld(&ctrl, cb + STORE_CUR) != 0;
                let read_sel = (round + 1) % 2;
                let write_sel = round % 2;

                // This round's bit window (set by the previous round's
                // last block / the sketch).
                let offset = ctx.ld(&ctrl, cb + offset_off + round);
                let width = b.min(bits - offset.min(bits - 1));
                // Previous round's window, target digit, and the
                // candidate prefix for re-filtering from the input.
                let (offset_prev, width_prev, target_prev, pval_prev) = if round > 0 {
                    let op = ctx.ld(&ctrl, cb + offset_off + round - 1);
                    (
                        op,
                        b.min(bits - op),
                        ctx.ld(&ctrl, cb + target_off + round - 1),
                        ctx.ld(&pvals, prob * (rounds + 1) + round - 1),
                    )
                } else {
                    (0, 0, 0, 0)
                };
                let k_rem = if round == 0 {
                    k as u32
                } else {
                    ctx.ld(&ctrl, cb + K_REM)
                };

                let start = blk * chunk;
                let end = (start + chunk).min(n_src);

                let mut local_hist: Vec<u32> = if !early && !ties {
                    ctx.shared_alloc::<u32>(radix)
                } else {
                    Vec::new()
                };
                let mut local_min = <T::Ordered as OrderedBits>::MAX;
                let mut local_max = <T::Ordered as OrderedBits>::ZERO;
                let mut saw_candidate = false;

                for i in start..end {
                    let (v, idx) = if src_is_buf {
                        (
                            ctx.ld(&buf_val[read_sel], prob * cap + i),
                            ctx.ld(&buf_idx[read_sel], prob * cap + i),
                        )
                    } else {
                        (inputs.ld(ctx, prob, i), i as u32)
                    };
                    let key = v.to_ordered();
                    ctx.ops(4);

                    if round == 0 {
                        local_hist[digit_at::<T::Ordered>(key, offset, width) as usize] += 1;
                        ctx.ops(4);
                        continue;
                    }

                    // Skip elements outside the current candidate
                    // prefix (emitted or discarded in earlier rounds).
                    if !src_is_buf
                        && offset_prev > 0
                        && key.shr(bits - offset_prev).to_u64() != pval_prev
                    {
                        ctx.ops(1);
                        continue;
                    }

                    let d_prev = digit_at::<T::Ordered>(key, offset_prev, width_prev);
                    ctx.ops(8);
                    if ties {
                        // Survivors are duplicates on the full key:
                        // admit the first k_rem by rank.
                        if d_prev < target_prev {
                            let pos = ctx.atomic_add(&ctrl, cb + OUT_CURSOR, 1) as usize;
                            debug_assert!(pos < k);
                            ctx.st_scatter(&out_val, prob * k + pos, v);
                            ctx.st_scatter(&out_idx, prob * k + pos, idx);
                        } else if d_prev == target_prev {
                            let rank = ctx.atomic_add(&ctrl, cb + TIE_CURSOR, 1);
                            if rank < k_rem {
                                let pos = ctx.atomic_add(&ctrl, cb + OUT_CURSOR, 1) as usize;
                                debug_assert!(pos < k);
                                ctx.st_scatter(&out_val, prob * k + pos, v);
                                ctx.st_scatter(&out_idx, prob * k + pos, idx);
                            }
                        }
                    } else if early {
                        if d_prev <= target_prev {
                            let pos = ctx.atomic_add(&ctrl, cb + OUT_CURSOR, 1) as usize;
                            debug_assert!(pos < k);
                            ctx.st_scatter(&out_val, prob * k + pos, v);
                            ctx.st_scatter(&out_idx, prob * k + pos, idx);
                        }
                    } else if d_prev < target_prev {
                        let pos = ctx.atomic_add(&ctrl, cb + OUT_CURSOR, 1) as usize;
                        debug_assert!(pos < k);
                        ctx.st_scatter(&out_val, prob * k + pos, v);
                        ctx.st_scatter(&out_idx, prob * k + pos, idx);
                    } else if d_prev == target_prev {
                        if store {
                            let pos = ctx.atomic_add(&ctrl, cb + bufcur_off + round, 1) as usize;
                            debug_assert!(pos < cap);
                            ctx.st_scatter(&buf_val[write_sel], prob * cap + pos, v);
                            ctx.st_scatter(&buf_idx[write_sel], prob * cap + pos, idx);
                        }
                        local_hist[digit_at::<T::Ordered>(key, offset, width) as usize] += 1;
                        // Track the scanned-candidate value range — the
                        // raw material for adaptive digit ordering.
                        local_min = local_min.min(key);
                        local_max = local_max.max(key);
                        saw_candidate = true;
                        ctx.ops(4);
                    }
                }

                if !local_hist.is_empty() {
                    let hbase = (prob * rounds + round) * radix;
                    for (d, &c) in local_hist.iter().enumerate() {
                        if c != 0 {
                            ctx.atomic_add(&hist, hbase + d, c);
                        }
                    }
                    ctx.ops(radix as u64);
                }
                if saw_candidate {
                    ctx.atomic_min_raw(&minb, prob * rounds + round, local_min);
                    ctx.atomic_max_raw(&maxb, prob * rounds + round, local_max);
                }

                let prev = ctx.atomic_add_sync(&done, prob * rounds + round, 1);
                if prev + 1 == blocks_per_problem as u32 {
                    obs::counters().radik_rounds.fetch_add(1, Relaxed);
                    if early || ties {
                        ctx.st(&ctrl, cb + FINISHED, 1);
                        ctx.st(&ctrl, cb + EARLY, 0);
                        ctx.st(&ctrl, cb + TIES, 0);
                        return;
                    }
                    let hbase = (prob * rounds + round) * radix;
                    let r_round = 1usize << width;
                    let mut acc: u32 = 0;
                    let mut target: u32 = 0;
                    let mut psum_before: u32 = 0;
                    let mut e_next: u32 = 0;
                    for d in 0..r_round {
                        let h = ctx.ld(&hist, hbase + d);
                        if acc + h >= k_rem {
                            target = d as u32;
                            psum_before = acc;
                            e_next = h;
                            break;
                        }
                        acc += h;
                    }
                    ctx.ops(2 * r_round as u64);

                    let k_next = k_rem - psum_before;
                    ctx.st(&ctrl, cb + target_off + round, target);
                    ctx.st(&ctrl, cb + K_REM, k_next);

                    // Adaptive digit ordering: start the next round
                    // past every bit the scanned candidates share
                    // (survivors are a subset, so the bound is safe).
                    // Round 0 scans the whole input, whose shared
                    // prefix the sketch already consumed.
                    let base = offset + width;
                    let offset_next = if round > 0 {
                        let mn = ctx.ld(&minb, prob * rounds + round);
                        let mx = ctx.ld(&maxb, prob * rounds + round);
                        base.max(common_prefix_len_of::<T::Ordered>(mn, mx))
                    } else {
                        base
                    };
                    let extra = offset_next - base;
                    // Extend the candidate prefix value: this round's
                    // target digit plus the skipped shared bits (read
                    // off the scanned-candidate min — every candidate
                    // agrees on bits [base, offset_next)).
                    let pval = ctx.ld(&pvals, prob * (rounds + 1) + round);
                    let mid = if extra > 0 {
                        let mn = ctx.ld(&minb, prob * rounds + round);
                        mn.shr(bits - offset_next).to_u64() & ((1u64 << extra) - 1)
                    } else {
                        0
                    };
                    ctx.st(
                        &pvals,
                        prob * (rounds + 1) + round + 1,
                        (((pval << width) | target as u64) << extra) | mid,
                    );
                    ctx.st(&ctrl, cb + offset_off + round + 1, offset_next);
                    if extra > 0 {
                        obs::counters()
                            .radik_skipped_bits
                            .fetch_add(extra as u64, Relaxed);
                    }

                    ctx.st(&ctrl, cb + SRC_BUFFERED, store as u32);
                    if store {
                        let cnt = ctx.ld(&ctrl, cb + bufcur_off + round);
                        ctx.st(&ctrl, cb + SRC_COUNT, cnt);
                    }
                    let is_early = early_stop && k_next == e_next;
                    let is_ties = !is_early && offset_next >= bits;
                    let store_next = !is_early
                        && !is_ties
                        && (!adaptive || (e_next as usize).saturating_mul(alpha) < n);
                    ctx.st(&ctrl, cb + STORE_CUR, store_next as u32);
                    ctx.st(&ctrl, cb + EARLY, is_early as u32);
                    ctx.st(&ctrl, cb + TIES, is_ties as u32);
                    ctx.ops(8);
                }
            };
            let (read_sel, write_sel) = ((round + 1) % 2, round % 2);
            let contract = inputs
                .declare_reads(KernelContract::new("radik_round_kernel"))
                .coordinates(&ctrl, Footprint::per_group(blocks_per_problem, ctrl_stride))
                .coordinates(&pvals, Footprint::per_group(blocks_per_problem, rounds + 1))
                .coordinates(
                    &hist,
                    Footprint::group_slice(
                        blocks_per_problem,
                        round * radix,
                        rounds * radix,
                        radix,
                    ),
                )
                .coordinates(
                    &minb,
                    Footprint::group_slice(blocks_per_problem, round, rounds, 1),
                )
                .coordinates(
                    &maxb,
                    Footprint::group_slice(blocks_per_problem, round, rounds, 1),
                )
                .atomics(
                    &done,
                    Footprint::group_slice(blocks_per_problem, round, rounds, 1),
                )
                .reads(
                    &buf_val[read_sel],
                    Footprint::per_group(blocks_per_problem, cap),
                )
                .reads(
                    &buf_idx[read_sel],
                    Footprint::per_group(blocks_per_problem, cap),
                )
                .writes_shared(
                    &buf_val[write_sel],
                    Footprint::per_group(blocks_per_problem, cap),
                )
                .writes_shared(
                    &buf_idx[write_sel],
                    Footprint::per_group(blocks_per_problem, cap),
                )
                .writes_shared(&out_val, Footprint::per_group(blocks_per_problem, k))
                .writes_shared(&out_idx, Footprint::per_group(blocks_per_problem, k))
                .uses_shared_mem(radix * 4);
            gpu.try_launch_checked(&contract, launch, kernel)?;
        }

        // ---- final resolution ---------------------------------------
        // Offsets advance ≥ b bits per round, so after `rounds` rounds
        // every problem is in the early or ties state (or already
        // finished); this kernel plays the role of AIR's last_filter.
        let read_sel_last = (rounds - 1) % 2;
        let contract = inputs
            .declare_reads(KernelContract::new("radik_last_filter_kernel"))
            .coordinates(&ctrl, Footprint::per_group(blocks_per_problem, ctrl_stride))
            .reads(&pvals, Footprint::per_group(blocks_per_problem, rounds + 1))
            .reads(
                &buf_val[read_sel_last],
                Footprint::per_group(blocks_per_problem, cap),
            )
            .reads(
                &buf_idx[read_sel_last],
                Footprint::per_group(blocks_per_problem, cap),
            )
            .writes_shared(&out_val, Footprint::per_group(blocks_per_problem, k))
            .writes_shared(&out_idx, Footprint::per_group(blocks_per_problem, k));
        gpu.try_launch_checked(&contract, launch, |ctx| {
            let prob = ctx.block_idx / blocks_per_problem;
            let blk = ctx.block_idx % blocks_per_problem;
            let cb = prob * ctrl_stride;

            if ctx.ld(&ctrl, cb + FINISHED) != 0 {
                return;
            }
            let early = ctx.ld(&ctrl, cb + EARLY) != 0;
            let ties = ctx.ld(&ctrl, cb + TIES) != 0;
            debug_assert!(
                early || ties,
                "a problem left the round loop in a non-terminal state"
            );
            let src_is_buf = ctx.ld(&ctrl, cb + SRC_BUFFERED) != 0;
            let n_src = if src_is_buf {
                ctx.ld(&ctrl, cb + SRC_COUNT) as usize
            } else {
                n
            };
            let last = rounds - 1;
            let read_sel = last % 2;
            let offset_prev = ctx.ld(&ctrl, cb + offset_off + last);
            let width_prev = b.min(bits - offset_prev);
            let target_prev = ctx.ld(&ctrl, cb + target_off + last);
            let pval_prev = ctx.ld(&pvals, prob * (rounds + 1) + last);
            let k_rem = ctx.ld(&ctrl, cb + K_REM);

            let start = blk * chunk;
            let end = (start + chunk).min(n_src);
            for i in start..end {
                let (v, idx) = if src_is_buf {
                    (
                        ctx.ld(&buf_val[read_sel], prob * cap + i),
                        ctx.ld(&buf_idx[read_sel], prob * cap + i),
                    )
                } else {
                    (inputs.ld(ctx, prob, i), i as u32)
                };
                let key = v.to_ordered();
                ctx.ops(3);
                if !src_is_buf
                    && offset_prev > 0
                    && key.shr(bits - offset_prev).to_u64() != pval_prev
                {
                    ctx.ops(1);
                    continue;
                }
                let d_prev = digit_at::<T::Ordered>(key, offset_prev, width_prev);
                ctx.ops(2);
                if early {
                    if d_prev <= target_prev {
                        let pos = ctx.atomic_add(&ctrl, cb + OUT_CURSOR, 1) as usize;
                        debug_assert!(pos < k);
                        ctx.st_scatter(&out_val, prob * k + pos, v);
                        ctx.st_scatter(&out_idx, prob * k + pos, idx);
                    }
                } else if d_prev < target_prev {
                    let pos = ctx.atomic_add(&ctrl, cb + OUT_CURSOR, 1) as usize;
                    debug_assert!(pos < k);
                    ctx.st_scatter(&out_val, prob * k + pos, v);
                    ctx.st_scatter(&out_idx, prob * k + pos, idx);
                } else if d_prev == target_prev {
                    let rank = ctx.atomic_add(&ctrl, cb + TIE_CURSOR, 1);
                    if rank < k_rem {
                        let pos = ctx.atomic_add(&ctrl, cb + OUT_CURSOR, 1) as usize;
                        debug_assert!(pos < k);
                        ctx.st_scatter(&out_val, prob * k + pos, v);
                        ctx.st_scatter(&out_idx, prob * k + pos, idx);
                    }
                }
            }
        })?;

        Ok((out_val, out_idx))
    }
}

/// Re-pack per-problem typed outputs into the packed `batch × k` pair
/// `run_rows` promises (used on the delegated small-problem path).
fn repack<T: RadixKey>(
    outs: Vec<TypedOutput<T>>,
    k: usize,
) -> (DeviceBuffer<T>, DeviceBuffer<u32>) {
    let batch = outs.len();
    let val = DeviceBuffer::<T>::zeroed("radik_out_val", batch * k);
    let idx = DeviceBuffer::<u32>::zeroed("radik_out_idx", batch * k);
    for (p, (v, i)) in outs.iter().enumerate() {
        for j in 0..k {
            val.set(p * k + j, v.get(j));
            idx.set(p * k + j, i.get(j));
        }
    }
    (val, idx)
}

impl TopKAlgorithm for RadiK {
    fn name(&self) -> &'static str {
        "RadiK"
    }

    fn category(&self) -> Category {
        Category::PartitionBased
    }

    fn try_select(
        &self,
        gpu: &mut dyn Backend,
        input: &DeviceBuffer<f32>,
        k: usize,
    ) -> Result<TopKOutput, TopKError> {
        let mut outs = self.try_select_batch(gpu, std::slice::from_ref(input), k)?;
        outs.pop().ok_or_else(|| TopKError::UnsupportedShape {
            algorithm: self.name(),
            detail: "batch of one produced no output".into(),
        })
    }

    fn try_select_batch(
        &self,
        gpu: &mut dyn Backend,
        inputs: &[DeviceBuffer<f32>],
        k: usize,
    ) -> Result<Vec<TopKOutput>, TopKError> {
        Ok(self
            .run_batch_typed(gpu, inputs, k)?
            .into_iter()
            .map(|(values, indices)| TopKOutput::new(values, indices))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_topk;
    use datagen::Distribution;
    use gpu_sim::{DeviceSpec, Gpu};

    #[test]
    fn agrees_with_cpu_reference_on_all_distributions() {
        for dist in Distribution::benchmark_set() {
            for (n, k) in [(9000, 13), (40_000, 256), (65_536, 1000)] {
                let data = datagen::generate(dist, n, (n ^ k) as u64);
                let mut gpu = Gpu::new(DeviceSpec::a100());
                let input = gpu.htod("in", &data);
                let out = RadiK::default().select(&mut gpu, &input, k);
                let (cpu_v, _) = topk_cpu::heap_topk(&data, k);
                let mut got = out.values.to_vec();
                let mut want = cpu_v;
                got.sort_by(f32::total_cmp);
                want.sort_by(f32::total_cmp);
                assert_eq!(got, want, "dist={} n={n} k={k}", dist.name());
                verify_topk(&data, k, &out.values.to_vec(), &out.indices.to_vec())
                    .unwrap_or_else(|e| panic!("dist={} n={n} k={k}: {e}", dist.name()));
            }
        }
    }

    #[test]
    fn adversarial_skew_all_prefix_widths() {
        for m_bits in [2u32, 8, 20, 28, 31] {
            let dist = Distribution::RadixAdversarial { m_bits };
            let data = datagen::generate(dist, 30_000, 100 + m_bits as u64);
            let mut gpu = Gpu::new(DeviceSpec::a100());
            let input = gpu.htod("in", &data);
            let out = RadiK::default().select(&mut gpu, &input, 77);
            verify_topk(&data, 77, &out.values.to_vec(), &out.indices.to_vec())
                .unwrap_or_else(|e| panic!("m_bits={m_bits}: {e}"));
        }
    }

    #[test]
    fn all_identical_input_resolves_as_ties() {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let data = vec![2.5f32; 20_000];
        let input = gpu.htod("in", &data);
        let out = RadiK::default().select(&mut gpu, &input, 50);
        assert!(out.values.to_vec().iter().all(|&v| v == 2.5));
        verify_topk(&data, 50, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
    }

    #[test]
    fn batch_and_matrix_paths_agree() {
        let (batch, n, k) = (6, 20_000, 64);
        let datas: Vec<Vec<f32>> = (0..batch)
            .map(|p| datagen::generate(Distribution::RadixAdversarial { m_bits: 16 }, n, p as u64))
            .collect();
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let bufs: Vec<_> = datas
            .iter()
            .enumerate()
            .map(|(p, d)| gpu.htod(&format!("in{p}"), d))
            .collect();
        let outs = RadiK::default().select_batch(&mut gpu, &bufs, k);
        let flat: Vec<f32> = datas.iter().flatten().copied().collect();
        let m = crate::matrix::DeviceMatrix::htod(&mut gpu, "m", &flat, batch, n);
        let (mv, mi) = RadiK::default().run_matrix_typed(&mut gpu, &m, k).unwrap();
        for (p, d) in datas.iter().enumerate() {
            verify_topk(d, k, &outs[p].values.to_vec(), &outs[p].indices.to_vec())
                .unwrap_or_else(|e| panic!("slices row {p}: {e}"));
            verify_topk(d, k, &mv.row_to_vec(p), &mi.row_to_vec(p))
                .unwrap_or_else(|e| panic!("matrix row {p}: {e}"));
        }
    }

    #[test]
    fn sketch_skips_the_shared_prefix() {
        let before = obs::counters().snapshot();
        let data = datagen::generate(Distribution::RadixAdversarial { m_bits: 20 }, 50_000, 3);
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input = gpu.htod("in", &data);
        let out = RadiK::default().select(&mut gpu, &input, 32);
        verify_topk(&data, 32, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
        let d = obs::counters().snapshot().delta_since(&before);
        assert!(
            d.radik_skipped_bits >= 20,
            "sketch should skip the 20 shared bits, skipped {}",
            d.radik_skipped_bits
        );
        assert!(d.radik_rounds >= 1);
    }

    #[test]
    fn beats_air_on_adversarial_skew() {
        // 24 shared bits waste AIR's first two 11-bit passes entirely
        // (single-bucket histograms over the full input); the sketch
        // starts RadiK at bit 24 directly. The batch amortises the
        // sketch's extra launch, so the saved full-input sweep is the
        // dominant term.
        let (batch, n, k) = (8, 1 << 19, 128);
        let datas: Vec<Vec<f32>> = (0..batch)
            .map(|p| {
                datagen::generate(
                    Distribution::RadixAdversarial { m_bits: 24 },
                    n,
                    9 + p as u64,
                )
            })
            .collect();
        type BatchRun<'a> = dyn Fn(&mut dyn Backend, &[DeviceBuffer<f32>]) + 'a;
        let time = |run: &BatchRun<'_>| {
            let mut gpu = Gpu::new(DeviceSpec::a100());
            let bufs: Vec<_> = datas
                .iter()
                .enumerate()
                .map(|(p, d)| gpu.htod(&format!("in{p}"), d))
                .collect();
            gpu.reset_profile();
            run(&mut gpu, &bufs);
            gpu.elapsed_us()
        };
        let radik = time(&|gpu, bufs| {
            RadiK::default().select_batch(gpu, bufs, k);
        });
        let air = time(&|gpu, bufs| {
            crate::AirTopK::default().select_batch(gpu, bufs, k);
        });
        assert!(
            radik < air,
            "RadiK ({radik:.1} us) should beat AIR ({air:.1} us) under 24-bit shared prefix"
        );
    }

    #[test]
    fn small_problems_delegate_without_a_sketch() {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let data = datagen::generate(Distribution::Uniform, 4096, 5);
        let input = gpu.htod("in", &data);
        gpu.reset_profile();
        let out = RadiK::default().select(&mut gpu, &input, 10);
        assert_eq!(gpu.timeline().kernel_count(), 1, "one-block delegation");
        verify_topk(&data, 10, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
    }

    #[test]
    fn integer_and_f64_keys_work() {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let vals: Vec<u32> =
            datagen::generate(Distribution::RadixAdversarial { m_bits: 12 }, 20_000, 4)
                .iter()
                .map(|v| v.to_bits())
                .collect();
        let input = gpu.htod("u32in", &vals);
        let outs = RadiK::default()
            .run_batch_typed(&mut gpu, std::slice::from_ref(&input), 40)
            .unwrap();
        let mut want = vals.clone();
        want.sort_unstable();
        want.truncate(40);
        let mut got = outs[0].0.to_vec();
        got.sort_unstable();
        assert_eq!(got, want);

        let dvals: Vec<f64> = (0..20_000)
            .map(|i| 1.0 + ((i * 2654435761u64 % 8191) as f64) * 1e-12)
            .collect();
        let dinput = gpu.htod("f64in", &dvals);
        let douts = RadiK::default()
            .run_batch_typed(&mut gpu, std::slice::from_ref(&dinput), 25)
            .unwrap();
        let mut dwant = dvals.clone();
        dwant.sort_by(f64::total_cmp);
        dwant.truncate(25);
        let mut dgot = douts[0].0.to_vec();
        dgot.sort_by(f64::total_cmp);
        assert_eq!(dgot, dwant);
    }
}
