//! Cross-crate integration: every algorithm in the study, on every
//! distribution, across awkward problem shapes, verified against the
//! reference selection — the reproduction of the paper's "results that
//! passed the correctness verification" bar (§5.1).

use gpu_topk::prelude::*;

fn run_verified(alg: &dyn TopKAlgorithm, data: &[f32], k: usize) {
    if let Some(mk) = alg.max_k() {
        if k > mk {
            return; // unsupported configuration, like the paper's missing curves
        }
    }
    let mut gpu = Gpu::new(DeviceSpec::a100());
    let input = gpu.htod("in", data);
    let out = alg.select(&mut gpu, &input, k);
    verify_topk(data, k, &out.values.to_vec(), &out.indices.to_vec())
        .unwrap_or_else(|e| panic!("{} failed: {e} (n = {}, k = {k})", alg.name(), data.len()));
}

#[test]
fn every_algorithm_every_distribution() {
    let algs = gpu_topk::all_algorithms();
    for dist in Distribution::benchmark_set() {
        let data = datagen::generate(dist, 20_000, 99);
        for alg in &algs {
            for k in [1usize, 10, 256, 2048, 19_999, 20_000] {
                run_verified(alg.as_ref(), &data, k);
            }
        }
    }
}

#[test]
fn awkward_sizes() {
    let algs = gpu_topk::all_algorithms();
    for n in [1usize, 2, 3, 31, 33, 1023, 1025, 4097] {
        let data = datagen::generate(Distribution::Normal, n, n as u64);
        for alg in &algs {
            for k in [1, n / 2, n] {
                if k >= 1 {
                    run_verified(alg.as_ref(), &data, k);
                }
            }
        }
    }
}

#[test]
fn special_float_values() {
    let algs = gpu_topk::all_algorithms();
    let mut data = vec![
        -0.0f32,
        0.0,
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::MIN_POSITIVE,
        -f32::MIN_POSITIVE,
        1e-42,  // subnormal
        -1e-42, // negative subnormal
        f32::MAX,
        f32::MIN,
    ];
    data.extend(datagen::generate(Distribution::Normal, 100, 1));
    for alg in &algs {
        for k in [1usize, 5, data.len()] {
            run_verified(alg.as_ref(), &data, k);
        }
    }
}

#[test]
fn all_identical_inputs() {
    let algs = gpu_topk::all_algorithms();
    let data = vec![42.5f32; 5000];
    for alg in &algs {
        run_verified(alg.as_ref(), &data, 1);
        run_verified(alg.as_ref(), &data, 777);
        run_verified(alg.as_ref(), &data, 5000);
    }
}

#[test]
fn adversarial_extremes() {
    // M = 30: only the last two bits vary — the worst case for every
    // radix method.
    let algs = gpu_topk::all_algorithms();
    let data = datagen::generate(Distribution::RadixAdversarial { m_bits: 30 }, 10_000, 3);
    for alg in &algs {
        run_verified(alg.as_ref(), &data, 100);
    }
}

#[test]
fn sorted_and_reversed_inputs() {
    let algs = gpu_topk::all_algorithms();
    let asc: Vec<f32> = (0..8192).map(|i| i as f32).collect();
    let desc: Vec<f32> = asc.iter().rev().copied().collect();
    for alg in &algs {
        run_verified(alg.as_ref(), &asc, 100);
        run_verified(alg.as_ref(), &desc, 100);
    }
}

#[test]
fn batched_execution_matches_single() {
    let algs = gpu_topk::all_algorithms();
    let k = 64;
    let datas: Vec<Vec<f32>> = (0..5)
        .map(|i| datagen::generate(Distribution::Uniform, 4096, i))
        .collect();
    for alg in &algs {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let inputs: Vec<_> = datas
            .iter()
            .enumerate()
            .map(|(i, d)| gpu.htod(&format!("p{i}"), d))
            .collect();
        let outs = alg.select_batch(&mut gpu, &inputs, k);
        assert_eq!(outs.len(), 5, "{}", alg.name());
        for (d, o) in datas.iter().zip(&outs) {
            verify_topk(d, k, &o.values.to_vec(), &o.indices.to_vec())
                .unwrap_or_else(|e| panic!("{} batch: {e}", alg.name()));
        }
    }
}

#[test]
fn ann_distance_arrays_are_handled_by_all() {
    let algs = gpu_topk::all_algorithms();
    for kind in [AnnKind::Deep1bLike, AnnKind::SiftLike] {
        let ds = AnnDataset::generate(kind, 4096, 2, 5);
        for q in 0..2 {
            let d = ds.distance_array(q);
            for alg in &algs {
                run_verified(alg.as_ref(), &d, 10);
                run_verified(alg.as_ref(), &d, 100);
            }
        }
    }
}

#[test]
fn works_on_all_three_devices() {
    let data = datagen::generate(Distribution::Uniform, 30_000, 8);
    for spec in [DeviceSpec::a100(), DeviceSpec::h100(), DeviceSpec::a10()] {
        for alg in gpu_topk::all_algorithms() {
            let mut gpu = Gpu::new(spec.clone());
            let input = gpu.htod("in", &data);
            let out = alg.select(&mut gpu, &input, 50);
            verify_topk(&data, 50, &out.values.to_vec(), &out.indices.to_vec())
                .unwrap_or_else(|e| panic!("{} on {}: {e}", alg.name(), spec.name));
        }
    }
}
