//! Integration tests pinning the paper's qualitative claims — the
//! "shape" of the evaluation that the reproduction must preserve.

use gpu_topk::prelude::*;

fn timed(alg: &dyn TopKAlgorithm, data: &[f32], k: usize) -> f64 {
    let mut gpu = Gpu::new(DeviceSpec::a100());
    let input = gpu.htod("in", data);
    gpu.reset_profile();
    let out = alg.select(&mut gpu, &input, k);
    let t = gpu.elapsed_us();
    verify_topk(data, k, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
    t
}

fn timed_batch(alg: &dyn TopKAlgorithm, datas: &[Vec<f32>], k: usize) -> f64 {
    let mut gpu = Gpu::new(DeviceSpec::a100());
    let inputs: Vec<_> = datas
        .iter()
        .enumerate()
        .map(|(i, d)| gpu.htod(&format!("p{i}"), d))
        .collect();
    gpu.reset_profile();
    alg.select_batch(&mut gpu, &inputs, k);
    gpu.elapsed_us()
}

#[test]
fn air_never_touches_pcie_but_radixselect_does() {
    // §3.1 / Fig. 8: AIR runs fully on-device; classic RadixSelect
    // round-trips every iteration.
    let data = datagen::generate(Distribution::Uniform, 1 << 18, 3);
    let profile = |alg: &dyn TopKAlgorithm| {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input = gpu.htod("in", &data);
        gpu.reset_profile();
        let _ = alg.select(&mut gpu, &input, 2048);
        (gpu.timeline().memcpy_us(), gpu.timeline().kernel_count())
    };
    let (air_pcie, air_kernels) = profile(&AirTopK::default());
    let (rs_pcie, rs_kernels) = profile(&RadixSelect);
    assert_eq!(air_pcie, 0.0);
    assert!(rs_pcie > 0.0);
    assert!(air_kernels < rs_kernels);
}

#[test]
fn air_beats_radixselect_as_in_table_2() {
    // Table 2 batch 1: 1.98-21.48x. Accept anything comfortably > 1.
    for dist in Distribution::benchmark_set() {
        let data = datagen::generate(dist, 1 << 20, 11);
        let air = timed(&AirTopK::default(), &data, 2048);
        let rs = timed(&RadixSelect, &data, 2048);
        let speedup = rs / air;
        assert!(
            speedup > 1.5,
            "{}: AIR {air} vs RadixSelect {rs} (speedup {speedup:.2})",
            dist.name()
        );
    }
}

#[test]
fn batch_100_amplifies_airs_advantage() {
    // Table 2: batch-100 speedups (8-574x) dwarf batch-1 speedups
    // because the baseline loops over problems while AIR fuses them.
    let k = 256;
    let n = 1 << 14;
    let one = vec![datagen::generate(Distribution::Uniform, n, 0)];
    let hundred: Vec<Vec<f32>> = (0..100)
        .map(|i| datagen::generate(Distribution::Uniform, n, i))
        .collect();
    let air = AirTopK::default();
    let rs = RadixSelect;
    let s1 = timed_batch(&rs, &one, k) / timed_batch(&air, &one, k);
    let s100 = timed_batch(&rs, &hundred, k) / timed_batch(&air, &hundred, k);
    assert!(
        s100 > 3.0 * s1,
        "batch-100 speedup {s100:.1} should dwarf batch-1 {s1:.1}"
    );
}

#[test]
fn gridselect_crushes_blockselect_at_large_n_batch_1() {
    // §5.3: up to 882x from using the whole device instead of one SM.
    let data = datagen::generate(Distribution::Uniform, 1 << 22, 9);
    let gs = timed(&GridSelect::default(), &data, 128);
    let bs = timed(&BlockSelect, &data, 128);
    let speedup = bs / gs;
    assert!(
        speedup > 20.0,
        "GridSelect {gs} vs BlockSelect {bs}: speedup {speedup:.1}"
    );
}

#[test]
fn blockselect_beats_warpselect() {
    // Fig. 6/7: "BlockSelect outperforms WarpSelect consistently."
    let data = datagen::generate(Distribution::Normal, 1 << 20, 9);
    for k in [32usize, 512, 2048] {
        let bs = timed(&BlockSelect, &data, k);
        let ws = timed(&WarpSelect, &data, k);
        assert!(bs < ws, "k={k}: BlockSelect {bs} vs WarpSelect {ws}");
    }
}

#[test]
fn partial_sort_methods_degrade_with_k_but_partition_methods_do_not() {
    // §5.1's reading of Fig. 6.
    let data = datagen::generate(Distribution::Uniform, 1 << 19, 4);
    let bt_small = timed(&BitonicTopK, &data, 8);
    let bt_large = timed(&BitonicTopK, &data, 256);
    assert!(
        bt_large > bt_small * 1.5,
        "Bitonic Top-K should slow with K: {bt_small} -> {bt_large}"
    );
    let air_small = timed(&AirTopK::default(), &data, 8);
    let air_large = timed(&AirTopK::default(), &data, 262_144);
    assert!(
        air_large < air_small * 3.0,
        "AIR should be nearly K-independent: {air_small} -> {air_large}"
    );
}

#[test]
fn adversarial_distribution_hurts_baselines_more_than_air() {
    // Fig. 7 row 3: partition baselines deteriorate under the
    // radix-adversarial distribution; AIR's adaptive strategy holds.
    let n = 1 << 20;
    let uni = datagen::generate(Distribution::Uniform, n, 5);
    let adv = datagen::generate(Distribution::RadixAdversarial { m_bits: 20 }, n, 5);
    let air_ratio = timed(&AirTopK::default(), &adv, 256) / timed(&AirTopK::default(), &uni, 256);
    let rs_ratio = timed(&RadixSelect, &adv, 256) / timed(&RadixSelect, &uni, 256);
    assert!(
        air_ratio < rs_ratio * 1.05,
        "AIR degradation {air_ratio:.2} vs RadixSelect {rs_ratio:.2}"
    );
}

#[test]
fn air_is_fastest_at_large_n_large_k() {
    // The paper's headline: AIR beats the virtual SOTA everywhere at
    // batch 1 (1.44-7.34x). Check a representative large-N point.
    let data = datagen::generate(Distribution::Normal, 1 << 21, 1);
    let k = 32_768; // beyond the partial-sorting caps
    let air = timed(&AirTopK::default(), &data, k);
    for alg in topk_baselines::all_baselines() {
        if alg.max_k().is_none_or(|mk| k <= mk) {
            let t = timed(alg.as_ref(), &data, k);
            assert!(
                air < t,
                "AIR ({air:.1}) must beat {} ({t:.1}) at N=2^21 K=32768",
                alg.name()
            );
        }
    }
}

#[test]
fn gridselect_wins_small_k_crossover() {
    // §5.1 guideline 2: for large N and small K the contributions
    // trade places; GridSelect should win at K <= 128 on big inputs.
    let data = datagen::generate(Distribution::Uniform, 1 << 22, 2);
    let gs = timed(&GridSelect::default(), &data, 32);
    let air = timed(&AirTopK::default(), &data, 32);
    assert!(gs < air * 1.5, "GridSelect {gs} vs AIR {air} at K=32");
}

#[test]
fn device_scaling_tracks_memory_bandwidth() {
    // §5.4: A100 ~3x over A10, H100 ~2x over A100 for memory-bound AIR.
    let data = datagen::generate(Distribution::Uniform, 1 << 22, 6);
    let time_on = |spec: DeviceSpec| {
        let mut gpu = Gpu::new(spec);
        let input = gpu.htod("in", &data);
        gpu.reset_profile();
        let _ = AirTopK::default().select(&mut gpu, &input, 2048);
        gpu.elapsed_us()
    };
    let a10 = time_on(DeviceSpec::a10());
    let a100 = time_on(DeviceSpec::a100());
    let h100 = time_on(DeviceSpec::h100());
    let r1 = a10 / a100;
    let r2 = a100 / h100;
    assert!((1.8..4.0).contains(&r1), "A100 over A10: {r1:.2}");
    assert!((1.3..3.0).contains(&r2), "H100 over A100: {r2:.2}");
}
