//! Property-based tests (proptest) on the core invariants:
//! * every algorithm's output is a correct top-K multiset with valid,
//!   distinct indices, for arbitrary finite inputs and arbitrary K;
//! * the reference verifier itself accepts permutations and rejects
//!   corruption;
//! * key mappings are monotone bijections;
//! * simulated cost behaves sanely (monotone in N for a fixed
//!   algorithm and K).

use gpu_topk::prelude::*;
use proptest::prelude::*;
use topk_core::keys::RadixKey;

/// Finite (non-NaN) f32s across the full range, including ±0, ±inf
/// excluded (kept finite so ordering semantics stay obvious), plus
/// clusters of duplicates to exercise tie handling.
fn input_strategy() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(
        prop_oneof![
            4 => -1e30f32..1e30f32,
            1 => prop_oneof![Just(0.0f32), Just(-0.0f32), Just(1.0f32), Just(-1.0f32)],
        ],
        1..300,
    )
}

fn check_algorithm(alg: &dyn TopKAlgorithm, data: &[f32], k: usize) -> Result<(), TestCaseError> {
    let mut gpu = Gpu::new(DeviceSpec::a100());
    let input = gpu.htod("in", data);
    let out = alg.select(&mut gpu, &input, k);
    let v = out.values.to_vec();
    let i = out.indices.to_vec();
    prop_assert!(
        verify_topk(data, k, &v, &i).is_ok(),
        "{} wrong on n={} k={k}: {:?}",
        alg.name(),
        data.len(),
        verify_topk(data, k, &v, &i)
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn air_topk_is_always_correct((data, kf) in (input_strategy(), 0.0f64..=1.0)) {
        let k = ((data.len() as f64 * kf) as usize).clamp(1, data.len());
        check_algorithm(&AirTopK::default(), &data, k)?;
    }

    #[test]
    fn air_variants_agree((data, kf) in (input_strategy(), 0.0f64..=1.0)) {
        let k = ((data.len() as f64 * kf) as usize).clamp(1, data.len());
        for cfg in [
            AirConfig { adaptive: false, ..AirConfig::default() },
            AirConfig { early_stop: false, ..AirConfig::default() },
            AirConfig { bits_per_pass: 8, ..AirConfig::default() },
            AirConfig { bits_per_pass: 4, ..AirConfig::default() },
        ] {
            check_algorithm(&AirTopK::new(cfg), &data, k)?;
        }
    }

    #[test]
    fn gridselect_is_always_correct((data, kf) in (input_strategy(), 0.0f64..=1.0)) {
        let k = ((data.len() as f64 * kf) as usize).clamp(1, data.len());
        check_algorithm(&GridSelect::default(), &data, k)?;
        let per_thread = GridSelect::new(GridSelectConfig {
            queue: QueueKind::PerThread { len: 2 },
            ..GridSelectConfig::default()
        });
        check_algorithm(&per_thread, &data, k)?;
    }

    #[test]
    fn all_baselines_are_correct((data, kf) in (input_strategy(), 0.0f64..=1.0)) {
        let k = ((data.len() as f64 * kf) as usize).clamp(1, data.len());
        for alg in topk_baselines::all_baselines() {
            if alg.max_k().is_none_or(|mk| k <= mk) {
                check_algorithm(alg.as_ref(), &data, k)?;
            }
        }
    }

    #[test]
    fn ordered_bits_are_monotone_bijection(a in any::<f32>(), b in any::<f32>()) {
        prop_assume!(!a.is_nan() && !b.is_nan());
        // Bijective: exact bit round-trip.
        prop_assert_eq!(f32::from_ordered(a.to_ordered()).to_bits(), a.to_bits());
        // Monotone w.r.t. the IEEE total order on non-NaN values.
        if a < b {
            prop_assert!(a.to_ordered() < b.to_ordered());
        }
        if a == b && a.to_bits() != b.to_bits() {
            // Only ±0.0 compare equal with different bits; the ordered
            // mapping breaks the tie deterministically (-0 < +0).
            let (neg, pos) = if a.is_sign_negative() { (a, b) } else { (b, a) };
            prop_assert!(neg.to_ordered() < pos.to_ordered());
        }
    }

    #[test]
    fn verifier_accepts_any_permutation(data in input_strategy(), seed in any::<u64>()) {
        let k = (data.len() / 2).max(1);
        let (mut v, mut i) = topk_core::reference_topk(&data, k);
        // Deterministic Fisher-Yates from the seed.
        let mut s = seed | 1;
        for j in (1..v.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let pick = (s >> 33) as usize % (j + 1);
            v.swap(j, pick);
            i.swap(j, pick);
        }
        prop_assert!(verify_topk(&data, k, &v, &i).is_ok());
    }

    #[test]
    fn verifier_rejects_value_corruption(data in input_strategy()) {
        prop_assume!(data.len() >= 2);
        let k = data.len() / 2 + 1;
        let (v, mut i) = topk_core::reference_topk(&data, k);
        // Corrupt one index to point somewhere else.
        let wrong = (i[0] as usize + 1) % data.len();
        prop_assume!(data[wrong].to_bits() != v[0].to_bits());
        i[0] = wrong as u32;
        prop_assert!(verify_topk(&data, k, &v, &i).is_err());
    }
}

#[test]
fn simulated_time_monotone_in_n_for_air() {
    // Not a proptest (each point costs a full run) but a sweep assert:
    // once the device is saturated, more data never makes the
    // selection faster. (Below saturation the occupancy gain from a
    // bigger grid can outweigh the extra bytes — real GPUs show the
    // same dip, so only the saturated regime is asserted.)
    let mut last = 0.0f64;
    for e in [18u32, 20, 22] {
        let n = 1usize << e;
        let data = datagen::generate(Distribution::Uniform, n, 7);
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input = gpu.htod("in", &data);
        gpu.reset_profile();
        let _ = AirTopK::default().select(&mut gpu, &input, 1024);
        let t = gpu.elapsed_us();
        assert!(
            t >= last,
            "time must not decrease with N: {t} after {last} at n=2^{e}"
        );
        last = t;
    }
}

#[test]
fn traffic_metering_is_deterministic() {
    // Same problem, same algorithm => byte-identical meters (the cost
    // model's determinism claim in DESIGN.md).
    let data = datagen::generate(Distribution::Normal, 50_000, 5);
    let run = || {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input = gpu.htod("in", &data);
        gpu.reset_profile();
        let _ = AirTopK::default().select(&mut gpu, &input, 100);
        (
            gpu.elapsed_us(),
            gpu.reports()
                .iter()
                .map(|r| r.stats.total_mem_bytes())
                .collect::<Vec<_>>(),
        )
    };
    let (t1, m1) = run();
    let (t2, m2) = run();
    assert_eq!(t1, t2);
    assert_eq!(m1, m2);
}
