//! Cross-algorithm agreement and failure-injection tests.
//!
//! The strongest correctness statement the benchmark can make is that
//! *every independent implementation agrees*: the 8 baselines, the 2
//! contributions, the hybrid layer, the auto-dispatcher, and the two
//! approximate selectors in their exact-degenerate configurations must
//! all return the same top-K multiset on the same input. Plus the
//! contract edges: NaN rejection, device-memory exhaustion, and
//! shared-memory overflow — and, for the approximate configurations,
//! the analytic recall bound.

use gpu_topk::prelude::*;
use topk_core::keys::RadixKey;
use topk_core::{measured_recall, BucketedTopK, TwoStageTopK, UnfusedRadix};

fn everything() -> Vec<Box<dyn TopKAlgorithm>> {
    let mut algs = gpu_topk::all_algorithms();
    algs.push(Box::new(DrTopK::new(AirTopK::default())));
    algs.push(Box::new(topk_core::SelectK::default()));
    algs.push(Box::new(UnfusedRadix::default()));
    // The approximate selectors in exact-degenerate configurations:
    // one bucket covering the whole of K, and two partitions each
    // keeping a full top-K superset — both must match the exact
    // multiset bit-for-bit, which pins the degenerate ends of the
    // degradation ladder to the same contract as everything else.
    algs.push(Box::new(BucketedTopK::new(1024)));
    algs.push(Box::new(TwoStageTopK::new(2, 1024)));
    algs
}

#[test]
fn fifteen_implementations_agree_on_the_multiset() {
    for dist in Distribution::benchmark_set() {
        let data = datagen::generate(dist, 30_000, 1234);
        for k in [1usize, 100, 1024] {
            let mut reference: Option<Vec<u32>> = None;
            for alg in everything() {
                if alg.max_k().is_some_and(|mk| k > mk) {
                    continue;
                }
                let mut gpu = Gpu::new(DeviceSpec::a100());
                let input = gpu.htod("in", &data);
                let out = alg.select(&mut gpu, &input, k);
                verify_topk(&data, k, &out.values.to_vec(), &out.indices.to_vec())
                    .unwrap_or_else(|e| panic!("{} ({}): {e}", alg.name(), dist.name()));
                let mut multiset: Vec<u32> =
                    out.values.to_vec().iter().map(|v| v.to_ordered()).collect();
                multiset.sort_unstable();
                match &reference {
                    None => reference = Some(multiset),
                    Some(r) => assert_eq!(
                        *r,
                        multiset,
                        "{} disagrees on {} k={k}",
                        alg.name(),
                        dist.name()
                    ),
                }
            }
        }
    }
}

#[test]
fn approximate_selectors_meet_their_analytic_recall_bound() {
    // In genuinely lossy configurations the two approximate selectors
    // cannot join the multiset agreement above; their contract is the
    // analytic expected-recall bound instead. Planned for a 0.9 target
    // on i.i.d. inputs, the measured recall must clear the bound minus
    // a statistical tolerance on every benchmark distribution.
    let (n, k) = (30_000, 100);
    for dist in Distribution::benchmark_set() {
        let data = datagen::generate(dist, n, 4321);
        let algs: Vec<(Box<dyn TopKAlgorithm>, f64)> = vec![
            {
                let a = BucketedTopK::for_recall(n, k, 0.9);
                let e = a.expected_recall(k);
                (Box::new(a), e)
            },
            {
                let a = TwoStageTopK::for_recall(n, k, 0.9);
                let e = a.expected_recall(k);
                (Box::new(a), e)
            },
        ];
        for (alg, expected) in algs {
            assert!(expected >= 0.9, "{}: planner missed target", alg.name());
            let mut gpu = Gpu::new(DeviceSpec::a100());
            let input = gpu.htod("in", &data);
            let out = alg.select(&mut gpu, &input, k);
            let got = measured_recall(&data, k, &out.values.to_vec());
            assert!(
                got >= expected - 0.1,
                "{} on {}: measured recall {got:.4} far below analytic bound {expected:.4}",
                alg.name(),
                dist.name()
            );
            // Indices must still point at the values they claim.
            let vals = out.values.to_vec();
            for (v, i) in vals.iter().zip(out.indices.to_vec()) {
                assert_eq!(data[i as usize].to_bits(), v.to_bits(), "{}", alg.name());
            }
        }
    }
}

#[test]
fn largest_k_is_the_mirror_of_smallest_k() {
    let data = datagen::generate(Distribution::Normal, 10_000, 5);
    let k = 200;
    let mut gpu = Gpu::new(DeviceSpec::a100());
    let input = gpu.htod("in", &data);

    let largest = SelectLargest::new(AirTopK::default()).select(&mut gpu, &input, k);
    let negated: Vec<f32> = data
        .iter()
        .map(|&x| f32::from_ordered(!x.to_ordered()))
        .collect();
    let neg_input = gpu.htod("neg", &negated);
    let smallest_of_neg = AirTopK::default().select(&mut gpu, &neg_input, k);

    let mut a: Vec<u32> = largest
        .values
        .to_vec()
        .iter()
        .map(|v| v.to_ordered())
        .collect();
    let mut b: Vec<u32> = smallest_of_neg
        .values
        .to_vec()
        .iter()
        .map(|v| !v.to_ordered())
        .collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
}

#[test]
fn verifier_catches_nan_poisoned_input() {
    let mut data = datagen::generate(Distribution::Uniform, 100, 1);
    data[50] = f32::NAN;
    // The algorithms' contract is NaN-free input; the verifier is the
    // backstop that refuses to bless any output computed from it.
    assert_eq!(
        verify_topk(&data, 10, &data[..10], &(0..10u32).collect::<Vec<_>>()),
        Err(topk_core::VerifyError::NaN)
    );
}

#[test]
fn device_out_of_memory_is_reported_not_hidden() {
    let mut gpu = Gpu::new(DeviceSpec::test_tiny());
    // A quarter of device memory, in u32 elements.
    let quarter = gpu.spec().device_mem_bytes / 4 / 4;
    let _a = gpu.try_alloc::<u32>("a", quarter).unwrap();
    let _b = gpu.try_alloc::<u32>("b", quarter).unwrap();
    let _c = gpu.try_alloc::<u32>("c", quarter).unwrap();
    let err = gpu.try_alloc::<u32>("d", quarter + 1).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("out of device memory"), "{msg}");
}

#[test]
fn injected_oom_mid_selection_leaks_no_scratch() {
    // Sweep a scripted device-OOM across every algorithm's allocation
    // sites: whichever scratch allocation fails, `try_select` must
    // surface the fault AND release everything it allocated before
    // the failure — the engine's retry path re-runs selections on the
    // same device, so a single leaked block per fault would
    // accumulate into a real OOM. Contract enforcement stays armed for
    // the whole sweep: the `catch_unwind` recovery inside `try_select`
    // must not let a contracted launch slip through with a static
    // violation or a conformance finding either.
    let data = datagen::generate(Distribution::Uniform, 30_000, 77);
    let k = 100;
    for alg in everything() {
        if alg.max_k().is_some_and(|mk| k > mk) {
            continue;
        }
        let mut fired = 0u32;
        for nth in 0..24u64 {
            let mut gpu = Gpu::new(DeviceSpec::a100());
            gpu.enable_sanitizer(SanitizerMode::off().with_contracts());
            let input = gpu.htod("in", &data);
            // Install the injector after the upload so the scripted
            // OOM targets the selection's allocations, not the input.
            let baseline = gpu.mem_allocated();
            let plan = FaultPlan::seeded(0xB0F).with_scripted(ScriptedFault {
                device: 0,
                kind: FaultKind::Oom,
                nth,
            });
            gpu.set_fault_injector(plan.injector_for(0));
            let result = alg.try_select(&mut gpu, &input, k);
            let report = gpu.sanitizer_report().expect("sanitizer was armed");
            assert!(
                report.is_clean(),
                "{} contract findings leaked through recovery at allocation #{nth}:\n{}",
                alg.name(),
                report
                    .findings
                    .iter()
                    .map(|f| f.to_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            );
            match result {
                Ok(out) => {
                    // Success may hand back device-accounted output
                    // buffers (algorithm-dependent); scratch beyond
                    // them must still be gone.
                    let out_bytes = (out.values.len() + out.indices.len()) * 4;
                    assert!(
                        gpu.mem_allocated() <= baseline + out_bytes,
                        "{} leaked scratch on a successful selection",
                        alg.name()
                    );
                    if gpu.fault_events().is_empty() {
                        // nth is past the algorithm's allocation
                        // count; larger values cannot fire either.
                        break;
                    }
                }
                Err(e) => {
                    fired += 1;
                    assert!(
                        e.is_device_fault(),
                        "{}: expected a device fault, got {e}",
                        alg.name()
                    );
                    assert_eq!(
                        gpu.mem_allocated(),
                        baseline,
                        "{} leaked scratch after injected OOM at allocation #{nth}",
                        alg.name()
                    );
                }
            }
        }
        assert!(
            fired > 0,
            "{}: the OOM sweep never hit an allocation site",
            alg.name()
        );
    }
}

#[test]
fn shared_memory_overflow_fails_loudly() {
    // A one-block AIR selection needs n*8 bytes of shared memory;
    // test_tiny has 16 KiB, so 4096 candidates cannot fit. The
    // simulator must fault like an over-subscribed CUDA launch, not
    // corrupt memory.
    let mut gpu = Gpu::new(DeviceSpec::test_tiny());
    let data = datagen::generate(Distribution::Uniform, 4096, 2);
    let input = gpu.htod("in", &data);
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        AirTopK::default().select(&mut gpu, &input, 10)
    }));
    assert!(r.is_err(), "launch exceeding shared memory must fault");
}

#[test]
fn batch_with_mismatched_lengths_is_rejected() {
    let mut gpu = Gpu::new(DeviceSpec::a100());
    let a = gpu.htod("a", &vec![1.0f32; 100]);
    let b = gpu.htod("b", &vec![1.0f32; 200]);
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        AirTopK::default().select_batch(&mut gpu, &[a, b], 5)
    }));
    assert!(r.is_err());
}

#[test]
fn dispatcher_and_components_agree_at_the_crossover() {
    // Right at the dispatch boundary both components must be correct
    // and identical in result.
    let s = topk_core::SelectK::default();
    let data = datagen::generate(Distribution::Uniform, 1 << 16, 3);
    for k in [255usize, 256, 257] {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input = gpu.htod("in", &data);
        let out = s.select(&mut gpu, &input, k);
        verify_topk(&data, k, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
    }
}
