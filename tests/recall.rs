//! Recall property tests for the approximate degradation rungs.
//!
//! The engine's recall accounting leans on one analytic claim: on
//! i.i.d. inputs, the expected recall of a partitioned selector is
//! `E[recall] = (1/K) · Σ_parts E[min(X_p, take_p)]` with `X_p ~
//! Binomial(K, n_p/n)` (see `topk_core::recall`). These tests validate
//! that claim empirically across an (N, K, batch) grid and three value
//! distributions — uniform, normal, and heavy-tailed zipf — for both
//! the bucketed and the two-stage selector. The value distribution
//! must not matter (only *positions* enter the model), which is
//! exactly what sweeping it checks.

use gpu_topk::prelude::*;
use topk_core::{measured_recall, BucketedTopK, TwoStageTopK};

const TARGET: f64 = 0.9;

/// Distributions the sweep covers: the two paper distributions plus
/// the heavy-tailed zipf added for the recall study.
fn dists() -> [Distribution; 3] {
    [
        Distribution::Uniform,
        Distribution::Normal,
        Distribution::Zipf {
            exponent_tenths: 11,
        },
    ]
}

/// Mean measured recall of `alg` over `batch`-sized problems for a few
/// seeds, paired with the number of samples that went into the mean.
fn mean_measured(
    alg: &dyn TopKAlgorithm,
    dist: Distribution,
    n: usize,
    k: usize,
    batch: usize,
) -> (f64, usize) {
    let mut total = 0.0;
    let mut count = 0;
    for seed in [11u64, 23, 47] {
        let problems = datagen::generate_batch(dist, n, batch, seed);
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let inputs: Vec<_> = problems
            .iter()
            .enumerate()
            .map(|(i, p)| gpu.htod(&format!("in{i}"), p))
            .collect();
        let outs = if batch == 1 {
            vec![alg.select(&mut gpu, &inputs[0], k)]
        } else {
            alg.select_batch(&mut gpu, &inputs, k)
        };
        for (p, out) in problems.iter().zip(&outs) {
            total += measured_recall(p, k, &out.values.to_vec());
            count += 1;
        }
    }
    (total / count as f64, count)
}

#[test]
fn measured_recall_tracks_the_analytic_bound_across_the_grid() {
    // Modest per-cell repetition keeps the grid affordable; the
    // tolerance below is sized for the resulting sample counts (recall
    // per query at K = 32 has σ ≈ 0.05, so a mean of ≥ 3 samples sits
    // within ±0.09 of its expectation at ≈ 3σ).
    for &(n, k, batch) in &[
        (8192usize, 32usize, 1usize),
        (8192, 32, 4),
        (8192, 256, 1),
        (1 << 15, 32, 4),
        (1 << 15, 256, 2),
    ] {
        for dist in dists() {
            let algs: Vec<(Box<dyn TopKAlgorithm>, f64)> = vec![
                {
                    let a = BucketedTopK::for_recall(n, k, TARGET);
                    let e = a.expected_recall(k);
                    (Box::new(a), e)
                },
                {
                    let a = TwoStageTopK::for_recall(n, k, TARGET);
                    let e = a.expected_recall(k);
                    (Box::new(a), e)
                },
            ];
            for (alg, expected) in algs {
                assert!(
                    expected >= TARGET,
                    "{} N={n} K={k}: planner expected {expected:.4} misses target",
                    alg.name()
                );
                let (mean, samples) = mean_measured(alg.as_ref(), dist, n, k, batch);
                let tol = 0.09 / (samples as f64 / 3.0).sqrt();
                assert!(
                    (mean - expected).abs() <= tol,
                    "{} on {} N={n} K={k} batch={batch}: measured {mean:.4} vs analytic \
                     {expected:.4} (tol {tol:.4}, {samples} samples)",
                    alg.name(),
                    dist.name()
                );
            }
        }
    }
}

#[test]
fn exact_degenerate_configurations_have_unit_recall_everywhere() {
    // per_bucket ≥ K collapses to one bucket; k′ ≥ K keeps a full
    // top-K superset per partition. Both must measure exactly 1.0 —
    // the top of the degradation ladder really is exact.
    let (n, k) = (8192, 64);
    for dist in dists() {
        for alg in [
            Box::new(BucketedTopK::new(64)) as Box<dyn TopKAlgorithm>,
            Box::new(TwoStageTopK::new(4, 64)),
        ] {
            assert_eq!(
                mean_measured(alg.as_ref(), dist, n, k, 2).0,
                1.0,
                "{} on {}",
                alg.name(),
                dist.name()
            );
        }
    }
}

#[test]
fn tightening_the_target_monotonically_raises_measured_recall() {
    // The planner must buy real recall with the extra work it spends:
    // sweeping the target upward may not lower the measured mean by
    // more than noise.
    let (n, k, batch) = (8192, 128, 4);
    let mut last = 0.0f64;
    for target in [0.7, 0.9, 0.99] {
        let alg = BucketedTopK::for_recall(n, k, target);
        let (mean, _) = mean_measured(&alg, Distribution::Uniform, n, k, batch);
        assert!(
            mean >= target - 0.05,
            "target {target}: measured {mean:.4} fell below the floor"
        );
        assert!(
            mean >= last - 0.03,
            "target {target}: measured {mean:.4} regressed from {last:.4}"
        );
        last = mean;
    }
}
