//! Chaos acceptance gate for the resilient serving layer.
//!
//! The invariant this file defends: **under any seeded fault schedule,
//! every submitted query reaches exactly one terminal result** — an
//! answer (GPU, failover, or CPU fallback) or a typed error — with no
//! hangs, no aborted drains, no scratch leaked on surviving devices,
//! and bitwise-identical outcomes when the same seed is replayed.

use gpu_topk::prelude::*;

/// A mixed-shape workload sized so every seed exercises coalescing,
/// retries, and multi-device scheduling.
fn submit_workload(engine: &mut TopKEngine, queries: usize) -> Vec<(Vec<f32>, usize)> {
    let shapes: [(usize, usize); 4] = [(1 << 13, 32), (1 << 12, 100), (1 << 13, 1), (2048, 256)];
    let mut expected = Vec::new();
    for q in 0..queries {
        let (n, k) = shapes[q % shapes.len()];
        let data = datagen::generate(Distribution::Uniform, n, q as u64);
        engine.submit(data.clone(), k).unwrap();
        expected.push((data, k));
    }
    expected
}

fn chaos_engine(seed: u64, rate: f64, devices: usize) -> TopKEngine {
    TopKEngine::new(
        EngineConfig::a100_pool(devices)
            .with_window(4)
            .with_queue_capacity(64)
            .with_faults(FaultPlan::chaos(seed, rate)),
    )
}

#[test]
fn every_query_is_terminal_under_a_seed_matrix() {
    for seed in [1u64, 7, 42, 1234, 0xDEAD_BEEF] {
        for rate in [0.01, 0.05, 0.15] {
            let mut engine = chaos_engine(seed, rate, 2);
            let expected = submit_workload(&mut engine, 40);
            let report = engine.drain();

            assert_eq!(
                report.results.len(),
                expected.len(),
                "seed {seed} rate {rate}: queries went missing"
            );
            for (r, (data, k)) in report.results.iter().zip(&expected) {
                match &r.outcome {
                    Ok(out) => {
                        // Whatever rung served it, the answer must be
                        // the true top-K.
                        verify_topk(data, *k, &out.values, &out.indices)
                            .unwrap_or_else(|e| panic!("seed {seed} rate {rate} q{}: {e}", r.id));
                        assert_ne!(r.served, Served::Failed);
                    }
                    Err(_) => assert_eq!(r.served, Served::Failed),
                }
            }
            // Surviving devices must not leak scratch, no matter which
            // retries and faults they absorbed. (Devices retired by an
            // injected panic are exempt: the panic unwound past their
            // scratch bookkeeping by design.)
            for d in report.devices.iter().filter(|d| !d.failed) {
                assert_eq!(
                    d.mem_allocated_after, 0,
                    "seed {seed} rate {rate}: device {} leaked scratch",
                    d.device
                );
            }
        }
    }
}

#[test]
fn same_seed_replays_bitwise_identically() {
    let run = |seed: u64| {
        let mut engine = chaos_engine(seed, 0.08, 3);
        submit_workload(&mut engine, 36);
        engine.drain().chaos_digest()
    };
    assert_eq!(run(42), run(42), "same seed must replay identically");
    assert_eq!(run(7), run(7));
    assert_ne!(
        run(42),
        run(9001),
        "different seeds should produce different fault schedules"
    );
}

#[test]
fn chaos_digest_is_bit_identical_with_contracts_on_vs_off() {
    // Contract verification (static checks before every launch plus
    // dynamic footprint conformance) must never touch KernelStats or
    // the cost model: the same seeded fault schedule has to replay to
    // the same digest whether the sanitizer enforces contracts or is
    // off entirely.
    let run = |contracts: bool| {
        let mut cfg = EngineConfig::a100_pool(3)
            .with_window(4)
            .with_queue_capacity(64)
            .with_faults(FaultPlan::chaos(42, 0.08));
        if contracts {
            cfg = cfg.with_sanitizer(SanitizerMode::full().with_contracts());
        }
        let mut engine = TopKEngine::new(cfg);
        submit_workload(&mut engine, 36);
        engine.drain().chaos_digest()
    };
    assert_eq!(
        run(false),
        run(true),
        "contract enforcement perturbed the chaos digest"
    );
}

#[test]
fn scripted_hang_retires_one_device_and_the_pool_survives() {
    let plan = FaultPlan::seeded(5).with_scripted(ScriptedFault {
        device: 0,
        kind: FaultKind::DeviceHang,
        nth: 2,
    });
    let mut engine = TopKEngine::new(
        EngineConfig::a100_pool(2)
            .with_window(2)
            .with_queue_capacity(32)
            .with_faults(plan),
    );
    let expected = submit_workload(&mut engine, 16);
    let report = engine.drain();

    assert!(report.devices[0].failed, "hung device is retired");
    assert!(!report.devices[1].failed);
    assert_eq!(report.results.len(), expected.len());
    for (r, (data, k)) in report.results.iter().zip(&expected) {
        let out = r.outcome.as_ref().expect("survivor absorbs the pool");
        verify_topk(data, *k, &out.values, &out.indices).unwrap();
    }
}

#[test]
fn last_device_hang_degrades_to_verified_cpu_answers() {
    let plan = FaultPlan::seeded(3).with_scripted(ScriptedFault {
        device: 0,
        kind: FaultKind::DeviceHang,
        nth: 0,
    });
    let mut engine = TopKEngine::new(
        EngineConfig::a100_pool(1)
            .with_queue_capacity(8)
            .with_faults(plan),
    );
    let expected = submit_workload(&mut engine, 4);
    let report = engine.drain();

    assert!(report.cpu_fallbacks >= 1);
    for (r, (data, k)) in report.results.iter().zip(&expected) {
        assert!(
            matches!(r.served, Served::CpuFallback { .. }),
            "q{} served={:?}",
            r.id,
            r.served
        );
        let out = r.outcome.as_ref().expect("CPU fallback still answers");
        verify_topk(data, *k, &out.values, &out.indices).unwrap();
    }
}

#[test]
fn impossible_deadline_is_a_typed_error_not_a_hang() {
    let mut engine = TopKEngine::new(EngineConfig::a100_pool(1).with_deadline_us(1));
    submit_workload(&mut engine, 4);
    let report = engine.drain();

    assert_eq!(report.deadline_misses, 4);
    for r in &report.results {
        assert_eq!(r.served, Served::Failed);
        assert!(
            matches!(r.outcome, Err(TopKError::DeadlineExceeded { .. })),
            "q{}: {:?}",
            r.id,
            r.outcome
        );
    }
}
