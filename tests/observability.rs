//! End-to-end observability: drain a mixed workload through an
//! instrumented engine and check the two export surfaces — Prometheus
//! text metrics and the Chrome trace — against what actually ran.
//!
//! The trace is validated with a minimal JSON parser (no external
//! crates in this environment), so "valid JSON" is checked for real,
//! not by substring search.

use gpu_topk::prelude::*;
use gpu_topk::topk_engine::chrome_trace;

/// Minimal JSON validity checker: consumes one JSON value and returns
/// the rest of the input, or an error description. Enough of RFC 8259
/// to reject anything chrome://tracing would choke on.
mod json {
    pub fn validate(s: &str) -> Result<(), String> {
        let rest = value(s.trim_start())?;
        if rest.trim_start().is_empty() {
            Ok(())
        } else {
            Err(format!("trailing garbage: {:.40}", rest))
        }
    }

    fn value(s: &str) -> Result<&str, String> {
        let s = s.trim_start();
        match s.chars().next() {
            Some('{') => object(s),
            Some('[') => array(s),
            Some('"') => string(s),
            Some('t') => literal(s, "true"),
            Some('f') => literal(s, "false"),
            Some('n') => literal(s, "null"),
            Some(c) if c == '-' || c.is_ascii_digit() => number(s),
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    fn literal<'a>(s: &'a str, lit: &str) -> Result<&'a str, String> {
        s.strip_prefix(lit)
            .ok_or_else(|| format!("bad literal at {:.20}", s))
    }

    fn number(s: &str) -> Result<&str, String> {
        let end = s
            .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
            .unwrap_or(s.len());
        let tok = &s[..end];
        tok.parse::<f64>()
            .map_err(|e| format!("bad number {tok:?}: {e}"))?;
        Ok(&s[end..])
    }

    fn string(s: &str) -> Result<&str, String> {
        let mut chars = s.char_indices().skip(1);
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => return Ok(&s[i + 1..]),
                '\\' => {
                    let (_, esc) = chars.next().ok_or("truncated escape")?;
                    if esc == 'u' {
                        for _ in 0..4 {
                            let (_, h) = chars.next().ok_or("truncated \\u escape")?;
                            if !h.is_ascii_hexdigit() {
                                return Err(format!("bad \\u digit {h:?}"));
                            }
                        }
                    } else if !"\"\\/bfnrt".contains(esc) {
                        return Err(format!("bad escape \\{esc}"));
                    }
                }
                c if (c as u32) < 0x20 => return Err("raw control char in string".into()),
                _ => {}
            }
        }
        Err("unterminated string".into())
    }

    fn object(s: &str) -> Result<&str, String> {
        let mut s = s[1..].trim_start();
        if let Some(rest) = s.strip_prefix('}') {
            return Ok(rest);
        }
        loop {
            s = string(s.trim_start())?.trim_start();
            s = s.strip_prefix(':').ok_or("missing ':' in object")?;
            s = value(s)?.trim_start();
            match s.chars().next() {
                Some(',') => s = &s[1..],
                Some('}') => return Ok(&s[1..]),
                other => return Err(format!("bad object separator {other:?}")),
            }
        }
    }

    fn array(s: &str) -> Result<&str, String> {
        let mut s = s[1..].trim_start();
        if let Some(rest) = s.strip_prefix(']') {
            return Ok(rest);
        }
        loop {
            s = value(s)?.trim_start();
            match s.chars().next() {
                Some(',') => s = &s[1..],
                Some(']') => return Ok(&s[1..]),
                other => return Err(format!("bad array separator {other:?}")),
            }
        }
    }

    #[test]
    fn validator_accepts_and_rejects() {
        validate(r#"{"a": [1, 2.5e-3, "x\n", true, null], "b": {}}"#).unwrap();
        assert!(validate(r#"{"a": }"#).is_err());
        assert!(validate(r#"[1, 2"#).is_err());
        assert!(validate(r#"{} extra"#).is_err());
    }
}

/// Drain a mixed workload (including one bad query) on two devices.
fn drained_engine() -> (TopKEngine, DrainReport) {
    let mut engine = TopKEngine::new(EngineConfig::a100_pool(2).with_window(4));
    for q in 0..12 {
        let n = [40_000, 20_000, 4096][q % 3];
        let data = datagen::generate(Distribution::Uniform, n, q as u64);
        engine.submit(data, 64).unwrap();
    }
    engine.submit(vec![1.0, 2.0, 3.0], 0).unwrap(); // InvalidK
    let report = engine.drain();
    (engine, report)
}

#[test]
fn prometheus_export_matches_the_acceptance_criteria() {
    let (engine, report) = drained_engine();
    let text = engine.render_prometheus();

    // Parseable Prometheus text: every non-comment line is
    // `name{labels} value` with a numeric value.
    for line in text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (_, val) = line.rsplit_once(' ').expect("line has a value");
        assert!(
            val.parse::<f64>().is_ok(),
            "non-numeric sample value in {line:?}"
        );
    }

    // Latency histogram with buckets.
    assert!(text.contains("# TYPE topk_engine_query_latency_us histogram"));
    assert!(text.contains("topk_engine_query_latency_us_bucket{le=\"+Inf\"} 13"));
    assert!(text.contains("topk_engine_query_latency_us_count 13"));

    // AIR adaptive counters (present even when zero) and real passes.
    assert!(text.contains("topk_air_adaptive_skips_total"));
    assert!(text.contains("topk_air_buffer_writes_total"));
    assert!(report.algo.air_passes > 0);
    assert!(!text.contains("topk_air_passes_total 0\n"));

    // Per-TopKError-kind error counters, all kinds pre-registered.
    assert!(text.contains("topk_engine_query_errors_total{kind=\"invalid_k\"} 1"));
    for kind in TopKError::KINDS {
        assert!(
            text.contains(&format!(
                "topk_engine_query_errors_total{{kind=\"{kind}\"}}"
            )),
            "missing error series for kind {kind}"
        );
    }
}

#[test]
fn chrome_trace_export_covers_a_real_multi_device_drain() {
    let (_, report) = drained_engine();
    assert!(
        report.devices.iter().all(|d| !d.batches.is_empty()),
        "workload must exercise both devices"
    );
    let trace = chrome_trace(&report);

    // Valid JSON, checked structurally.
    json::validate(&trace).unwrap_or_else(|e| panic!("invalid trace JSON: {e}"));

    // One kernel track and one query track per device.
    for d in &report.devices {
        assert!(trace.contains(&format!("device {} kernels", d.device)));
        assert!(trace.contains(&format!("device {} queries", d.device)));
    }

    // Kernel span count matches the KernelReport count exactly.
    let kernel_reports: usize = report.devices.iter().map(|d| d.kernel_reports.len()).sum();
    assert!(kernel_reports > 0);
    assert_eq!(trace.matches("\"cat\":\"kernel\"").count(), kernel_reports);

    // Every query appears as a service span, and waiting queries have
    // queue-wait spans.
    assert_eq!(
        trace.matches("\"cat\":\"query\"").count(),
        report.results.len()
    );
    let waiters = report
        .results
        .iter()
        .filter(|r| r.queue_wait_us > 0.0)
        .count();
    assert_eq!(trace.matches("\"cat\":\"queue\"").count(), waiters);
}

#[test]
fn spans_thread_from_submission_to_kernel_reports() {
    let (_, report) = drained_engine();
    for r in &report.results {
        assert_ne!(r.span, 0);
        // The query's batch span resolves to tagged kernel launches on
        // its device.
        let dev = &report.devices[r.device];
        let tagged = dev
            .kernel_reports
            .iter()
            .filter(|kr| kr.span == r.batch_span)
            .count();
        if r.outcome.is_ok() {
            assert!(tagged > 0, "query {} has no kernel launches", r.id);
        }
    }
}

/// Every integer value of `"<key>": N` in `json`, in order of
/// appearance.
fn int_values(json: &str, key: &str) -> Vec<u64> {
    let pat = format!("\"{key}\": ");
    json.match_indices(&pat)
        .filter_map(|(i, _)| {
            let rest = &json[i + pat.len()..];
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        })
        .collect()
}

/// Every string value of `"<key>": "..."` in `json`, in order.
fn str_values<'a>(json: &'a str, key: &str) -> Vec<&'a str> {
    let pat = format!("\"{key}\": \"");
    json.match_indices(&pat)
        .filter_map(|(i, _)| {
            let rest = &json[i + pat.len()..];
            rest.find('"').map(|end| &rest[..end])
        })
        .collect()
}

#[test]
fn scripted_fault_produces_a_parseable_post_mortem() {
    // The acceptance scenario: a fault scripted via FaultPlan kills the
    // only batch of the only device; retries and the CPU fallback are
    // disabled so the failure is terminal and the flight recorder must
    // dump a post-mortem.
    let plan = FaultPlan::seeded(7).with_scripted(ScriptedFault {
        device: 0,
        kind: FaultKind::LaunchFail,
        nth: 0,
    });
    let mut engine = TopKEngine::new(
        EngineConfig::a100_pool(1)
            .with_faults(plan)
            .with_retry(RetryPolicy {
                max_retries: 0,
                ..Default::default()
            })
            .with_cpu_fallback(false),
    );
    let data = datagen::generate(Distribution::Uniform, 4096, 1);
    engine.submit(data, 32).unwrap();
    let report = engine.drain();
    assert!(report.results[0].outcome.is_err());

    let pms = engine.take_post_mortems();
    assert_eq!(pms.len(), 1, "exactly one trigger step");
    let pm = &pms[0];
    json::validate(pm).unwrap_or_else(|e| panic!("invalid post-mortem JSON: {e}\n{pm}"));

    assert!(pm.contains("\"trigger\": \"query_failed\""), "{pm}");
    for section in ["\"events\"", "\"devices\"", "\"drift\"", "\"calibration\""] {
        assert!(pm.contains(section), "missing {section}:\n{pm}");
    }
    // Device snapshot: the scripted fault is in the fault log and the
    // lifetime fault counter.
    assert!(pm.contains("launch_fail@"), "{pm}");
    assert!(pm.contains("\"faults\": 1"), "{pm}");

    // The event window tells the story in order: sequence numbers are
    // strictly increasing and the causal chain submit → launch →
    // device_fault → query_failed appears in that order.
    let seqs = int_values(pm, "seq");
    assert!(seqs.len() >= 4, "{pm}");
    assert!(
        seqs.windows(2).all(|w| w[0] < w[1]),
        "events out of order: {seqs:?}"
    );
    let kinds = str_values(pm, "kind");
    let pos = |k: &str| {
        kinds
            .iter()
            .position(|x| *x == k)
            .unwrap_or_else(|| panic!("no {k} event in {kinds:?}"))
    };
    assert!(pos("submit") < pos("launch"));
    assert!(pos("launch") < pos("device_fault"));
    assert!(pos("device_fault") < pos("query_failed"));
}

#[test]
fn post_mortem_after_successful_batches_carries_the_drift_table() {
    let mut engine = TopKEngine::new(EngineConfig::a100_pool(1).with_window(4));
    for q in 0..8 {
        let data = datagen::generate(Distribution::Uniform, 20_000, q);
        engine.submit(data, 64).unwrap();
    }
    let _ = engine.drain();
    assert!(
        !engine.drift().is_empty(),
        "successful batches populate the drift tracker"
    );
    assert!(engine.take_post_mortems().is_empty(), "clean drain");

    // Now trigger a dump; it must carry the accumulated drift table
    // and the tuner calibration state.
    engine.submit(vec![1.0, 2.0, 3.0], 0).unwrap(); // InvalidK
    let _ = engine.drain();
    let pms = engine.take_post_mortems();
    assert_eq!(pms.len(), 1);
    let pm = &pms[0];
    json::validate(pm).unwrap_or_else(|e| panic!("invalid post-mortem JSON: {e}\n{pm}"));
    let samples = int_values(pm, "samples");
    assert!(
        samples.iter().any(|&s| s > 0),
        "drift rows must be populated:\n{pm}"
    );
    assert!(pm.contains("\"family\""), "calibration rows present:\n{pm}");
    // A second take returns nothing — the dump buffer drains.
    assert!(engine.take_post_mortems().is_empty());
}

#[test]
fn drain_report_attributes_stage_latency() {
    let (_, report) = drained_engine();
    let s = &report.stages;
    assert!(s.kernel_us > 0.0, "kernel time attributed: {s:?}");
    assert!(
        s.queue_wait_us > 0.0,
        "coalescing makes queries wait: {s:?}"
    );
    let total: f64 = s.rows().iter().map(|(_, v)| v).sum();
    assert!(total.is_finite() && total > 0.0);
    // Per-batch attribution is consistent with the per-device records.
    for d in &report.devices {
        for b in &d.batches {
            assert!(b.stages.device_us() >= 0.0);
        }
    }
}

#[test]
fn chaos_digest_is_bit_identical_with_profiling_consumed_or_ignored() {
    // The profiling subsystem is host-side bookkeeping: draining its
    // artifacts (metrics, drift, flight recorder, post-mortems, trace)
    // or changing the recorder capacity must not move a single bit of
    // the same-seed chaos digest.
    let run = |consume: bool, flight_capacity: usize| -> String {
        let mut engine = TopKEngine::new(
            EngineConfig::a100_pool(2)
                .with_window(4)
                .with_faults(FaultPlan::chaos(42, 0.10))
                .with_flight_capacity(flight_capacity),
        );
        for q in 0..24 {
            let n = [40_000, 20_000, 4096][q % 3];
            let data = datagen::generate(Distribution::Uniform, n, q as u64);
            engine.submit(data, 64).unwrap();
        }
        let report = engine.drain();
        if consume {
            let _ = engine.render_prometheus();
            let _ = engine.drift_table_text();
            let _ = engine.calibration();
            let _ = engine.flight_recorder().len();
            let _ = engine.take_post_mortems();
            let _ = chrome_trace(&report);
        }
        report.chaos_digest()
    };
    let baseline = run(false, 256);
    assert_eq!(baseline, run(true, 256), "consuming profiling artifacts");
    assert_eq!(baseline, run(true, 32), "smaller flight recorder");
}

#[test]
fn engine_snapshot_tracks_queue_errors_and_utilization() {
    let (engine, _) = drained_engine();
    let snap = engine.snapshot();
    assert_eq!(snap.queue_depth, 0);
    assert_eq!(snap.queries_submitted, 13);
    assert_eq!(snap.queries_completed, 12);
    assert_eq!(snap.queries_failed, 1);
    assert!(snap
        .errors
        .iter()
        .any(|&(kind, n)| kind == "invalid_k" && n == 1));
    assert!(
        snap.tuner_plan_hits + snap.tuner_plan_misses > 0,
        "the tuner consults its plan table on every dispatch"
    );
    assert_eq!(snap.devices.len(), 2);
    for d in &snap.devices {
        assert!(d.utilization > 0.0 && d.utilization <= 1.0 + 1e-9);
        assert!(d.kernel_launches > 0);
    }
}
