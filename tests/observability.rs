//! End-to-end observability: drain a mixed workload through an
//! instrumented engine and check the two export surfaces — Prometheus
//! text metrics and the Chrome trace — against what actually ran.
//!
//! The trace is validated with a minimal JSON parser (no external
//! crates in this environment), so "valid JSON" is checked for real,
//! not by substring search.

use gpu_topk::prelude::*;
use gpu_topk::topk_engine::chrome_trace;

/// Minimal JSON validity checker: consumes one JSON value and returns
/// the rest of the input, or an error description. Enough of RFC 8259
/// to reject anything chrome://tracing would choke on.
mod json {
    pub fn validate(s: &str) -> Result<(), String> {
        let rest = value(s.trim_start())?;
        if rest.trim_start().is_empty() {
            Ok(())
        } else {
            Err(format!("trailing garbage: {:.40}", rest))
        }
    }

    fn value(s: &str) -> Result<&str, String> {
        let s = s.trim_start();
        match s.chars().next() {
            Some('{') => object(s),
            Some('[') => array(s),
            Some('"') => string(s),
            Some('t') => literal(s, "true"),
            Some('f') => literal(s, "false"),
            Some('n') => literal(s, "null"),
            Some(c) if c == '-' || c.is_ascii_digit() => number(s),
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    fn literal<'a>(s: &'a str, lit: &str) -> Result<&'a str, String> {
        s.strip_prefix(lit)
            .ok_or_else(|| format!("bad literal at {:.20}", s))
    }

    fn number(s: &str) -> Result<&str, String> {
        let end = s
            .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
            .unwrap_or(s.len());
        let tok = &s[..end];
        tok.parse::<f64>()
            .map_err(|e| format!("bad number {tok:?}: {e}"))?;
        Ok(&s[end..])
    }

    fn string(s: &str) -> Result<&str, String> {
        let mut chars = s.char_indices().skip(1);
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => return Ok(&s[i + 1..]),
                '\\' => {
                    let (_, esc) = chars.next().ok_or("truncated escape")?;
                    if esc == 'u' {
                        for _ in 0..4 {
                            let (_, h) = chars.next().ok_or("truncated \\u escape")?;
                            if !h.is_ascii_hexdigit() {
                                return Err(format!("bad \\u digit {h:?}"));
                            }
                        }
                    } else if !"\"\\/bfnrt".contains(esc) {
                        return Err(format!("bad escape \\{esc}"));
                    }
                }
                c if (c as u32) < 0x20 => return Err("raw control char in string".into()),
                _ => {}
            }
        }
        Err("unterminated string".into())
    }

    fn object(s: &str) -> Result<&str, String> {
        let mut s = s[1..].trim_start();
        if let Some(rest) = s.strip_prefix('}') {
            return Ok(rest);
        }
        loop {
            s = string(s.trim_start())?.trim_start();
            s = s.strip_prefix(':').ok_or("missing ':' in object")?;
            s = value(s)?.trim_start();
            match s.chars().next() {
                Some(',') => s = &s[1..],
                Some('}') => return Ok(&s[1..]),
                other => return Err(format!("bad object separator {other:?}")),
            }
        }
    }

    fn array(s: &str) -> Result<&str, String> {
        let mut s = s[1..].trim_start();
        if let Some(rest) = s.strip_prefix(']') {
            return Ok(rest);
        }
        loop {
            s = value(s)?.trim_start();
            match s.chars().next() {
                Some(',') => s = &s[1..],
                Some(']') => return Ok(&s[1..]),
                other => return Err(format!("bad array separator {other:?}")),
            }
        }
    }

    #[test]
    fn validator_accepts_and_rejects() {
        validate(r#"{"a": [1, 2.5e-3, "x\n", true, null], "b": {}}"#).unwrap();
        assert!(validate(r#"{"a": }"#).is_err());
        assert!(validate(r#"[1, 2"#).is_err());
        assert!(validate(r#"{} extra"#).is_err());
    }
}

/// Drain a mixed workload (including one bad query) on two devices.
fn drained_engine() -> (TopKEngine, DrainReport) {
    let mut engine = TopKEngine::new(EngineConfig::a100_pool(2).with_window(4));
    for q in 0..12 {
        let n = [40_000, 20_000, 4096][q % 3];
        let data = datagen::generate(Distribution::Uniform, n, q as u64);
        engine.submit(data, 64).unwrap();
    }
    engine.submit(vec![1.0, 2.0, 3.0], 0).unwrap(); // InvalidK
    let report = engine.drain();
    (engine, report)
}

#[test]
fn prometheus_export_matches_the_acceptance_criteria() {
    let (engine, report) = drained_engine();
    let text = engine.render_prometheus();

    // Parseable Prometheus text: every non-comment line is
    // `name{labels} value` with a numeric value.
    for line in text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (_, val) = line.rsplit_once(' ').expect("line has a value");
        assert!(
            val.parse::<f64>().is_ok(),
            "non-numeric sample value in {line:?}"
        );
    }

    // Latency histogram with buckets.
    assert!(text.contains("# TYPE topk_engine_query_latency_us histogram"));
    assert!(text.contains("topk_engine_query_latency_us_bucket{le=\"+Inf\"} 13"));
    assert!(text.contains("topk_engine_query_latency_us_count 13"));

    // AIR adaptive counters (present even when zero) and real passes.
    assert!(text.contains("topk_air_adaptive_skips_total"));
    assert!(text.contains("topk_air_buffer_writes_total"));
    assert!(report.algo.air_passes > 0);
    assert!(!text.contains("topk_air_passes_total 0\n"));

    // Per-TopKError-kind error counters, all kinds pre-registered.
    assert!(text.contains("topk_engine_query_errors_total{kind=\"invalid_k\"} 1"));
    for kind in TopKError::KINDS {
        assert!(
            text.contains(&format!(
                "topk_engine_query_errors_total{{kind=\"{kind}\"}}"
            )),
            "missing error series for kind {kind}"
        );
    }
}

#[test]
fn chrome_trace_export_covers_a_real_multi_device_drain() {
    let (_, report) = drained_engine();
    assert!(
        report.devices.iter().all(|d| !d.batches.is_empty()),
        "workload must exercise both devices"
    );
    let trace = chrome_trace(&report);

    // Valid JSON, checked structurally.
    json::validate(&trace).unwrap_or_else(|e| panic!("invalid trace JSON: {e}"));

    // One kernel track and one query track per device.
    for d in &report.devices {
        assert!(trace.contains(&format!("device {} kernels", d.device)));
        assert!(trace.contains(&format!("device {} queries", d.device)));
    }

    // Kernel span count matches the KernelReport count exactly.
    let kernel_reports: usize = report.devices.iter().map(|d| d.kernel_reports.len()).sum();
    assert!(kernel_reports > 0);
    assert_eq!(trace.matches("\"cat\":\"kernel\"").count(), kernel_reports);

    // Every query appears as a service span, and waiting queries have
    // queue-wait spans.
    assert_eq!(
        trace.matches("\"cat\":\"query\"").count(),
        report.results.len()
    );
    let waiters = report
        .results
        .iter()
        .filter(|r| r.queue_wait_us > 0.0)
        .count();
    assert_eq!(trace.matches("\"cat\":\"queue\"").count(), waiters);
}

#[test]
fn spans_thread_from_submission_to_kernel_reports() {
    let (_, report) = drained_engine();
    for r in &report.results {
        assert_ne!(r.span, 0);
        // The query's batch span resolves to tagged kernel launches on
        // its device.
        let dev = &report.devices[r.device];
        let tagged = dev
            .kernel_reports
            .iter()
            .filter(|kr| kr.span == r.batch_span)
            .count();
        if r.outcome.is_ok() {
            assert!(tagged > 0, "query {} has no kernel launches", r.id);
        }
    }
}

#[test]
fn engine_snapshot_tracks_queue_errors_and_utilization() {
    let (engine, _) = drained_engine();
    let snap = engine.snapshot();
    assert_eq!(snap.queue_depth, 0);
    assert_eq!(snap.queries_submitted, 13);
    assert_eq!(snap.queries_completed, 12);
    assert_eq!(snap.queries_failed, 1);
    assert!(snap
        .errors
        .iter()
        .any(|&(kind, n)| kind == "invalid_k" && n == 1));
    assert_eq!(snap.devices.len(), 2);
    for d in &snap.devices {
        assert!(d.utilization > 0.0 && d.utilization <= 1.0 + 1e-9);
        assert!(d.kernel_launches > 0);
    }
}
