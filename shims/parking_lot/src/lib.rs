//! Offline stand-in for the subset of `parking_lot` this workspace
//! uses: `Mutex`/`RwLock` with panic-free `lock()` accessors. Built on
//! the `std::sync` primitives; lock poisoning is deliberately ignored
//! (parking_lot has no poisoning), which matches how the workspace
//! treats a panicking critical section as fatal anyway.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock()` returns the guard directly, like
/// `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with panic-free accessors, like
/// `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a lock guarding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(0u32);
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
        assert_eq!(l.into_inner(), 9);
    }
}
