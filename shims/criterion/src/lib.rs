//! Offline stand-in for the subset of `criterion` this workspace uses:
//! `criterion_group!`/`criterion_main!`, benchmark groups with
//! `sample_size`/`throughput`/`bench_function`/`bench_with_input`, and
//! `Bencher::iter`. Instead of criterion's statistical engine, each
//! benchmark runs a fixed warm-up plus measured sample loop and prints
//! mean wall time (and throughput when configured) — enough to compare
//! runs by eye and to keep `cargo bench`/`--all-targets` building in an
//! offline environment.

use std::time::{Duration, Instant};

/// How many measured iterations a `Bencher::iter` call performs.
/// `CRITERION_SHIM_SAMPLES` overrides (e.g. `=1` for CI smoke runs).
fn samples(group_hint: usize) -> usize {
    std::env::var("CRITERION_SHIM_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(group_hint)
        .max(1)
}

/// Identifies one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation for a group, mirroring `criterion::Throughput`.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    iters: usize,
    /// Mean time per iteration, filled by [`Bencher::iter`].
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` for the configured number of samples (plus one warm-up),
    /// recording mean wall time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed() / self.iters as u32;
    }
}

/// A named collection of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the measured iteration count (criterion's statistical sample
    /// size; here simply the loop count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotate subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: samples(self.sample_size),
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: samples(self.sample_size),
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Conclude the group (printing is per-benchmark; this is a no-op
    /// kept for API compatibility).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let per_iter = b.elapsed.as_secs_f64();
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => format!(" ({:.3e} elem/s)", n as f64 / per_iter.max(1e-12)),
            Throughput::Bytes(n) => format!(" ({:.3e} B/s)", n as f64 / per_iter.max(1e-12)),
        });
        println!(
            "{}/{}: {:>12.3} us/iter{}",
            self.name,
            id.id,
            per_iter * 1e6,
            rate.unwrap_or_default()
        );
    }
}

/// The benchmark manager, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Re-export matching `criterion::black_box` (deprecated upstream in
/// favour of `std::hint::black_box`, which the workspace uses).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(3).throughput(Throughput::Elements(10));
            g.bench_function("inc", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &p| {
                b.iter(|| black_box(p * 2))
            });
            g.finish();
        }
        assert!(ran >= 3);
    }
}
