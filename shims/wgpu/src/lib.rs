//! Offline stand-in for the `wgpu` WebGPU API (see `shims/README.md`).
//!
//! The build environment has no crates.io access and no GPU, so this
//! shim provides exactly the slice of the wgpu 0.20 surface that
//! `topk-wgpu` compiles against. Its one behavioural commitment is
//! honest: [`Instance::request_adapter`] always returns `None`, the
//! same answer real wgpu gives on a headless machine with no usable
//! GPU driver. Everything downstream of an [`Adapter`] is therefore
//! statically unreachable here — those types wrap an uninhabited
//! `Void` so their method bodies are `match self.0 {}`, not `todo!()`
//! placeholders — while still typechecking the exact call sequences
//! (`request_device` → pipelines → bind groups → dispatch → readback)
//! that run against the real crate.
//!
//! Divergence from upstream, chosen for a no-async-runtime build:
//! `request_adapter` and `request_device` return their values
//! directly instead of futures. `topk-wgpu` isolates both calls in
//! one adapter-probe function so swapping the real crate back in only
//! means re-adding the `pollster::block_on` wrappers there.

use std::borrow::Cow;
use std::marker::PhantomData;
use std::ops::{Deref, RangeFull};

/// Uninhabited: no value of any `Void`-wrapping type can exist, which
/// is the shim's proof that device-path methods never run.
#[derive(Debug)]
enum Void {}

impl Void {
    fn absurd<T>(&self) -> T {
        match *self {}
    }
}

// ---------------------------------------------------------------------
// Instance / adapter probing (the only live code path)
// ---------------------------------------------------------------------

/// Entry point to the API. The shim's instance enumerates no backends.
#[derive(Debug, Default)]
pub struct Instance {}

impl Instance {
    /// Create an instance; the descriptor is accepted for call-site
    /// compatibility and ignored.
    pub fn new(_desc: InstanceDescriptor) -> Self {
        Instance {}
    }

    /// Probe for a physical device. Always `None` here — the build
    /// environment is headless — which is exactly what callers must
    /// already handle with real wgpu.
    pub fn request_adapter(&self, _options: &RequestAdapterOptions) -> Option<Adapter> {
        None
    }
}

/// Instance configuration; all fields are defaulted and ignored.
#[derive(Debug, Default)]
pub struct InstanceDescriptor {
    /// Which native APIs to enumerate.
    pub backends: Backends,
}

/// Bitset of native graphics APIs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Backends(u32);

impl Backends {
    /// Every backend wgpu knows about.
    pub const PRIMARY: Backends = Backends(0x1F);
    /// No backends (what this shim effectively enumerates).
    pub const NONE: Backends = Backends(0);
}

/// Adapter-selection preferences.
#[derive(Debug, Default)]
pub struct RequestAdapterOptions {
    /// Power/performance trade-off hint.
    pub power_preference: PowerPreference,
    /// Reject software rasterizers when `false`.
    pub force_fallback_adapter: bool,
}

/// Adapter power/performance hint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PowerPreference {
    /// No preference.
    #[default]
    None,
    /// Prefer integrated/low-power adapters.
    LowPower,
    /// Prefer discrete/high-performance adapters.
    HighPerformance,
}

// ---------------------------------------------------------------------
// Device path (uninhabited beyond this point)
// ---------------------------------------------------------------------

/// A physical device handle. Unobtainable from this shim.
#[derive(Debug)]
pub struct Adapter(Void);

impl Adapter {
    /// Identifying information about the adapter.
    pub fn get_info(&self) -> AdapterInfo {
        self.0.absurd()
    }

    /// Open a logical device and its submission queue.
    #[allow(clippy::result_unit_err)]
    pub fn request_device(
        &self,
        _desc: &DeviceDescriptor,
        _trace_path: Option<&std::path::Path>,
    ) -> Result<(Device, Queue), RequestDeviceError> {
        self.0.absurd()
    }
}

/// Adapter identity as reported by the driver.
#[derive(Debug, Clone)]
pub struct AdapterInfo {
    /// Human-readable adapter name.
    pub name: String,
    /// Which native API backs the adapter.
    pub backend: Backends,
}

/// Logical-device configuration; all fields defaulted and ignored.
#[derive(Debug, Default)]
pub struct DeviceDescriptor<'a> {
    /// Debug label.
    pub label: Option<&'a str>,
}

/// Device creation failed.
#[derive(Debug, Clone)]
pub struct RequestDeviceError;

impl std::fmt::Display for RequestDeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("requesting a device from the wgpu shim")
    }
}

impl std::error::Error for RequestDeviceError {}

/// An open logical device.
#[derive(Debug)]
pub struct Device(Void);

impl Device {
    /// Compile a shader module from WGSL source.
    pub fn create_shader_module(&self, _desc: ShaderModuleDescriptor) -> ShaderModule {
        self.0.absurd()
    }

    /// Build a compute pipeline around one shader entry point.
    pub fn create_compute_pipeline(&self, _desc: &ComputePipelineDescriptor) -> ComputePipeline {
        self.0.absurd()
    }

    /// Allocate a device buffer.
    pub fn create_buffer(&self, _desc: &BufferDescriptor) -> Buffer {
        self.0.absurd()
    }

    /// Bind buffers to a pipeline's binding slots.
    pub fn create_bind_group(&self, _desc: &BindGroupDescriptor) -> BindGroup {
        self.0.absurd()
    }

    /// Start recording GPU commands.
    pub fn create_command_encoder(&self, _desc: &CommandEncoderDescriptor) -> CommandEncoder {
        self.0.absurd()
    }

    /// Drive the device; `Maintain::Wait` blocks until submitted work
    /// (including map callbacks) completes.
    pub fn poll(&self, _maintain: Maintain) {
        self.0.absurd()
    }
}

/// The device's command-submission queue.
#[derive(Debug)]
pub struct Queue(Void);

impl Queue {
    /// Schedule a host→device write into `buffer` at `offset`.
    pub fn write_buffer(&self, _buffer: &Buffer, _offset: u64, _data: &[u8]) {
        self.0.absurd()
    }

    /// Submit recorded command buffers for execution.
    pub fn submit<I: IntoIterator<Item = CommandBuffer>>(&self, _command_buffers: I) {
        self.0.absurd()
    }
}

/// How hard [`Device::poll`] should work.
#[derive(Debug, Clone, Copy)]
pub enum Maintain {
    /// Block until the queue is empty.
    Wait,
    /// Process outstanding work without blocking.
    Poll,
}

// --- shaders and pipelines -------------------------------------------

/// Shader source + label.
pub struct ShaderModuleDescriptor<'a> {
    /// Debug label.
    pub label: Option<&'a str>,
    /// The source text.
    pub source: ShaderSource<'a>,
}

/// Shader source languages the workspace uses (WGSL only).
pub enum ShaderSource<'a> {
    /// WGSL source text.
    Wgsl(Cow<'a, str>),
}

/// A compiled shader module.
#[derive(Debug)]
pub struct ShaderModule(Void);

/// Compute-pipeline configuration.
pub struct ComputePipelineDescriptor<'a> {
    /// Debug label.
    pub label: Option<&'a str>,
    /// `None` infers the layout from the shader.
    pub layout: Option<&'a PipelineLayout>,
    /// The compiled shader holding the entry point.
    pub module: &'a ShaderModule,
    /// Name of the `@compute` entry function.
    pub entry_point: &'a str,
}

/// An explicit pipeline layout (the workspace always infers layouts).
#[derive(Debug)]
pub struct PipelineLayout(Void);

/// A ready-to-dispatch compute pipeline.
#[derive(Debug)]
pub struct ComputePipeline(Void);

impl ComputePipeline {
    /// The inferred layout of bind group `index`.
    pub fn get_bind_group_layout(&self, _index: u32) -> BindGroupLayout {
        self.0.absurd()
    }
}

/// Layout one bind group must conform to.
#[derive(Debug)]
pub struct BindGroupLayout(Void);

// --- buffers ----------------------------------------------------------

/// Buffer allocation parameters.
#[derive(Debug)]
pub struct BufferDescriptor<'a> {
    /// Debug label.
    pub label: Option<&'a str>,
    /// Size in bytes.
    pub size: u64,
    /// Allowed usages.
    pub usage: BufferUsages,
    /// Whether the buffer starts host-mapped.
    pub mapped_at_creation: bool,
}

/// Bitset of buffer usages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferUsages(u32);

impl BufferUsages {
    /// Readable/writable from shaders as a storage buffer.
    pub const STORAGE: BufferUsages = BufferUsages(1 << 0);
    /// Valid destination of copies / `write_buffer`.
    pub const COPY_DST: BufferUsages = BufferUsages(1 << 1);
    /// Valid source of buffer-to-buffer copies.
    pub const COPY_SRC: BufferUsages = BufferUsages(1 << 2);
    /// Host-mappable for reading.
    pub const MAP_READ: BufferUsages = BufferUsages(1 << 3);
}

impl std::ops::BitOr for BufferUsages {
    type Output = BufferUsages;
    fn bitor(self, rhs: BufferUsages) -> BufferUsages {
        BufferUsages(self.0 | rhs.0)
    }
}

/// A device buffer.
#[derive(Debug)]
pub struct Buffer(Void);

impl Buffer {
    /// Reference the whole buffer as a binding resource.
    pub fn as_entire_binding(&self) -> BindingResource<'_> {
        self.0.absurd()
    }

    /// View a byte range (only `..` is used by the workspace).
    pub fn slice(&self, _bounds: RangeFull) -> BufferSlice<'_> {
        self.0.absurd()
    }

    /// Release a host mapping established by `map_async`.
    pub fn unmap(&self) {
        self.0.absurd()
    }
}

/// A view over part of a [`Buffer`].
#[derive(Debug)]
pub struct BufferSlice<'a>(Void, PhantomData<&'a Buffer>);

impl<'a> BufferSlice<'a> {
    /// Begin mapping the slice into host memory; `callback` fires from
    /// [`Device::poll`] when the mapping is ready.
    pub fn map_async(
        &self,
        _mode: MapMode,
        _callback: impl FnOnce(Result<(), BufferAsyncError>) + Send + 'static,
    ) {
        self.0.absurd()
    }

    /// Access the mapped bytes.
    pub fn get_mapped_range(&self) -> BufferView<'a> {
        self.0.absurd()
    }
}

/// Mapping direction.
#[derive(Debug, Clone, Copy)]
pub enum MapMode {
    /// Map for host reads.
    Read,
}

/// Asynchronous buffer mapping failed.
#[derive(Debug, Clone)]
pub struct BufferAsyncError;

/// Host view of mapped buffer bytes.
#[derive(Debug)]
pub struct BufferView<'a>(Void, PhantomData<&'a Buffer>);

impl Deref for BufferView<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.0.absurd()
    }
}

// --- bind groups ------------------------------------------------------

/// Bind-group contents.
pub struct BindGroupDescriptor<'a> {
    /// Debug label.
    pub label: Option<&'a str>,
    /// Layout the entries must match.
    pub layout: &'a BindGroupLayout,
    /// One entry per `@binding` slot.
    pub entries: &'a [BindGroupEntry<'a>],
}

/// One binding-slot assignment.
pub struct BindGroupEntry<'a> {
    /// The shader-side `@binding` index.
    pub binding: u32,
    /// What to bind there.
    pub resource: BindingResource<'a>,
}

/// A bindable resource (buffers only, for this workspace).
#[derive(Debug)]
pub struct BindingResource<'a>(Void, PhantomData<&'a Buffer>);

/// Buffers bound to a pipeline's slots.
#[derive(Debug)]
pub struct BindGroup(Void);

// --- command recording ------------------------------------------------

/// Command-encoder configuration.
#[derive(Debug, Default)]
pub struct CommandEncoderDescriptor<'a> {
    /// Debug label.
    pub label: Option<&'a str>,
}

/// Records GPU commands for one submission.
#[derive(Debug)]
pub struct CommandEncoder(Void);

impl CommandEncoder {
    /// Open a compute pass; dispatches record until it is dropped.
    pub fn begin_compute_pass(&mut self, _desc: &ComputePassDescriptor) -> ComputePass<'_> {
        self.0.absurd()
    }

    /// Record a device-to-device byte copy.
    pub fn copy_buffer_to_buffer(
        &mut self,
        _source: &Buffer,
        _source_offset: u64,
        _destination: &Buffer,
        _destination_offset: u64,
        _copy_size: u64,
    ) {
        self.0.absurd()
    }

    /// Finish recording.
    pub fn finish(self) -> CommandBuffer {
        self.0.absurd()
    }
}

/// Compute-pass configuration.
#[derive(Debug, Default)]
pub struct ComputePassDescriptor<'a> {
    /// Debug label.
    pub label: Option<&'a str>,
}

/// An open compute pass.
#[derive(Debug)]
pub struct ComputePass<'a>(Void, PhantomData<&'a mut CommandEncoder>);

impl ComputePass<'_> {
    /// Select the pipeline for subsequent dispatches.
    pub fn set_pipeline(&mut self, _pipeline: &ComputePipeline) {
        self.0.absurd()
    }

    /// Bind `bind_group` at `index`.
    pub fn set_bind_group(&mut self, _index: u32, _bind_group: &BindGroup, _offsets: &[u32]) {
        self.0.absurd()
    }

    /// Launch `x * y * z` workgroups of the bound pipeline.
    pub fn dispatch_workgroups(&mut self, _x: u32, _y: u32, _z: u32) {
        self.0.absurd()
    }
}

/// A finished, submittable command sequence.
#[derive(Debug)]
pub struct CommandBuffer(Void);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headless_probe_finds_no_adapter() {
        let instance = Instance::new(InstanceDescriptor::default());
        assert!(instance
            .request_adapter(&RequestAdapterOptions::default())
            .is_none());
    }

    #[test]
    fn buffer_usages_compose() {
        let u = BufferUsages::STORAGE | BufferUsages::COPY_SRC;
        assert_ne!(u, BufferUsages::STORAGE);
    }
}
