//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! `crossbeam::scope` with `Scope::spawn` and joinable handles. Built
//! on `std::thread::scope`, which provides the same borrow-checked
//! scoped-thread guarantee.
//!
//! Behavioural note: `crossbeam::scope` collects panics of unjoined
//! children into its `Err` return; `std::thread::scope` resumes the
//! panic instead. Every caller in this workspace either joins all
//! handles or treats a child panic as fatal (`.expect(...)`), so the
//! observable behaviour — a propagating panic — is identical.

use std::any::Any;

/// Result type of [`scope`], mirroring `crossbeam::thread::Result`.
pub type ScopeResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

/// A scope handle passed to [`scope`]'s closure and to every spawned
/// child (crossbeam passes it so children can spawn siblings).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

/// Handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the child to finish, returning its result or the panic
    /// payload.
    pub fn join(self) -> ScopeResult<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives the scope (so it can
    /// spawn siblings), matching crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&handle)),
        }
    }
}

/// Run `f` with a scope in which threads borrowing from the caller's
/// stack can be spawned; all children are joined before this returns.
pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

/// `crossbeam::thread` module alias, for callers using the long path.
pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_borrow_and_join() {
        let data = [1u32, 2, 3, 4];
        let sums: Vec<u32> = super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        assert_eq!(sums, vec![3, 7]);
    }

    #[test]
    fn children_can_spawn_siblings() {
        let v = super::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 41).join().unwrap() + 1)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(v, 42);
    }
}
