//! Offline stand-in for the subset of `proptest` this workspace uses:
//! the `proptest!` macro, range/`Just`/`any`/`prop_oneof!` strategies,
//! `prop::collection::vec`, `prop_flat_map`/`prop_map`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Semantics: each `#[test]` runs `ProptestConfig::cases` random cases
//! from a deterministic per-test seed. `prop_assume!` skips the case
//! (no retry loop); there is no shrinking — a failing case reports its
//! generated inputs via `Debug` where available in the assertion
//! message instead. That trade-off keeps the vendored shim tiny while
//! preserving what the test-suite relies on: broad randomized coverage
//! with reproducible failures.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// The random source threaded through strategies.
    pub type TestRng = StdRng;

    /// A generator of random values. Unlike real proptest there is no
    /// value tree / shrinking; `generate` draws one value.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one random value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Generate a value, then generate from the strategy `f`
        /// builds from it (dependent generation).
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { base: self, f }
        }

        /// Box the strategy, erasing its concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted union of boxed strategies (`prop_oneof!`'s engine).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u32,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` arms. Weights must sum > 0.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs positive total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.gen::<u64>() % self.total as u64;
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights exhausted")
        }
    }

    /// Full-range / all-values strategy for a primitive (`any::<T>()`).
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Types with an `any::<T>()` strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value — full bit range for integers and
        /// floats (floats may be NaN/±inf, like real proptest).
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for i32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<u32>() as i32
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<u64>() as usize
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Full bit patterns: subnormals, ±0, ±inf and NaN included.
            f32::from_bits(rng.gen::<u32>())
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::from_bits(rng.gen::<u64>())
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    // ---- ranges as strategies -------------------------------------------

    /// Primitives sampleable from half-open/inclusive ranges.
    pub trait RangeSample: Copy + PartialOrd {
        /// Uniform draw from `[low, high)`.
        fn sample_half_open(rng: &mut TestRng, low: Self, high: Self) -> Self;
        /// Uniform draw from `[low, high]`.
        fn sample_inclusive(rng: &mut TestRng, low: Self, high: Self) -> Self;
    }

    macro_rules! impl_range_sample_int {
        ($($t:ty),*) => {$(
            impl RangeSample for $t {
                fn sample_half_open(rng: &mut TestRng, low: Self, high: Self) -> Self {
                    assert!(low < high, "empty range");
                    let span = (high as i128 - low as i128) as u128;
                    (low as i128 + (rng.gen::<u64>() as u128 % span) as i128) as $t
                }
                fn sample_inclusive(rng: &mut TestRng, low: Self, high: Self) -> Self {
                    assert!(low <= high, "empty range");
                    let span = (high as i128 - low as i128) as u128 + 1;
                    (low as i128 + (rng.gen::<u64>() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_sample_float {
        ($($t:ty),*) => {$(
            impl RangeSample for $t {
                fn sample_half_open(rng: &mut TestRng, low: Self, high: Self) -> Self {
                    assert!(low < high, "empty range");
                    low + (rng.gen::<f64>() as $t) * (high - low)
                }
                fn sample_inclusive(rng: &mut TestRng, low: Self, high: Self) -> Self {
                    assert!(low <= high, "empty range");
                    // Map [0,1) onto [low, high] by occasionally pinning
                    // the endpoint so `high` is actually reachable.
                    if rng.gen::<u64>() % 4096 == 0 {
                        return high;
                    }
                    low + (rng.gen::<f64>() as $t) * (high - low)
                }
            }
        )*};
    }

    impl_range_sample_float!(f32, f64);

    impl<T: RangeSample> Strategy for std::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_half_open(rng, self.start, self.end)
        }
    }

    impl<T: RangeSample> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_inclusive(rng, *self.start(), *self.end())
        }
    }

    // ---- tuples of strategies -------------------------------------------

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
    }
}

pub mod collection {
    use super::strategy::{RangeSample, Strategy, TestRng};

    /// Element-count specification for [`vec()`](fn@vec): an exact length or a
    /// range of lengths.
    #[derive(Debug, Clone)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Exact(usize),
        /// Uniformly chosen length in `[lo, hi)`.
        Range(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Exact(n)
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange::Range(r.start, r.end)
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange::Range(*r.start(), *r.end() + 1)
        }
    }

    /// Strategy producing `Vec`s of `elem`-generated values.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(elem, size)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = match self.size {
                SizeRange::Exact(n) => n,
                SizeRange::Range(lo, hi) => usize::sample_half_open(rng, lo, hi),
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::SeedableRng;

    /// Per-test configuration (`cases` is the only knob the workspace
    /// uses).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A test-case failure (assertion or explicit rejection).
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assert*` failed with this message.
        Fail(String),
        /// `prop_assume!` rejected the inputs (the case is skipped).
        Reject,
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject => write!(f, "input rejected by prop_assume!"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic per-test seed: FNV-1a over the test name, so each
    /// test explores its own reproducible sequence.
    pub fn rng_for_test(name: &str, case: u32) -> super::strategy::TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        super::strategy::TestRng::seed_from_u64(h ^ ((case as u64) << 32))
    }
}

/// The `proptest::prelude` re-exports the workspace imports.
pub mod prelude {
    pub use super::collection;
    pub use super::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    /// `ProptestConfig` alias used in `proptest_config` attributes.
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` namespace (`prop::collection::vec`, ...).
    pub mod prop {
        pub use super::super::collection;
    }
}

/// Assert inside a proptest case; failure aborts only this case with a
/// propagated message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{:?}` == `{:?}`",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Assert inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: `{:?}` != `{:?}`", a, b);
    }};
}

/// Skip the current case when its generated inputs don't satisfy a
/// precondition. (Real proptest retries; the shim just skips — with
/// the workspace's generous case counts, coverage stays equivalent.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Weighted or unweighted union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// The `proptest!` test-defining macro: runs each body over
/// `ProptestConfig::cases` random bindings.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])+
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::rng_for_test(stringify!($name), case);
                    $(let $pat =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(())
                        | ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => {}
                        ::core::result::Result::Err(e) => {
                            panic!("proptest {} case {case} failed: {e}", stringify!($name));
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 10usize..20, f in -1.5f32..1.5, g in 0.0f64..=1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-1.5..1.5).contains(&f));
            prop_assert!((0.0..=1.0).contains(&g));
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(0u32..5, 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn flat_map_dependent(v in (1u32..=4).prop_flat_map(|n| prop::collection::vec(any::<u32>(), 1usize << n))) {
            prop_assert!(v.len().is_power_of_two());
        }

        #[test]
        fn oneof_weighted(x in prop_oneof![4 => 0i32..10, 1 => Just(-1i32)]) {
            prop_assert!(x == -1 || (0..10).contains(&x));
        }

        #[test]
        fn tuple_and_patterns((a, b) in (0u32..4, 4u32..8)) {
            prop_assert!(a < 4 && (4..8).contains(&b));
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn deterministic_rng_per_test() {
        use crate::strategy::Strategy;
        let s = 0u64..u64::MAX;
        let mut r1 = crate::test_runner::rng_for_test("t", 3);
        let mut r2 = crate::test_runner::rng_for_test("t", 3);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
