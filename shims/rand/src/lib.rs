//! Offline stand-in for the subset of the `rand` crate this workspace
//! uses: `StdRng::seed_from_u64` plus `Rng::gen` for the primitive
//! types. The registry is unavailable in the build environment, so the
//! workspace vendors the API surface it needs (see `shims/README.md`).
//!
//! `StdRng` here is bit-exact with `rand` 0.8's (ChaCha12 with the
//! `rand_core` 0.6 `seed_from_u64` expansion, plus `rand`'s `Standard`
//! integer/float conversions), so seeded datagen streams match what the
//! upstream crate would produce.

/// Core random source, mirroring `rand_core::RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from `[low, high)`.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_uniform(self, range.start, range.end)
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable from the standard distribution.
pub trait SampleStandard {
    /// Draw one sample.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for bool {
    /// Sign test on the next 32-bit word, like `rand`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() as i32) < 0
    }
}

impl SampleStandard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision, exactly `rand`'s
    /// multiply-based `Standard` conversion.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision, exactly `rand`'s
    /// multiply-based `Standard` conversion.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types sampleable uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draw one sample from `[low, high)`.
    fn sample_uniform<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
}

impl SampleUniform for usize {
    fn sample_uniform<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "empty range");
        let span = (high - low) as u64;
        low + (rng.next_u64() % span) as usize
    }
}

impl SampleUniform for u64 {
    fn sample_uniform<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "empty range");
        low + rng.next_u64() % (high - low)
    }
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
        low + f64::sample_standard(rng) * (high - low)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    const BUF_WORDS: usize = 64; // four ChaCha blocks, like rand_chacha

    /// `rand::rngs::StdRng`: a ChaCha12 block generator behind the
    /// `rand_core` `BlockRng` word buffer. Word streams (and therefore
    /// every `gen` call) are bit-identical with the upstream crate.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        /// Key words 4..12 of the ChaCha state (little-endian seed).
        key: [u32; 8],
        /// 64-bit block counter (ChaCha state words 12..14).
        counter: u64,
        /// Buffered output: four blocks generated at a time.
        buf: [u32; BUF_WORDS],
        /// Next unread word in `buf`.
        index: usize,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // rand_core 0.6's default seed expansion: a PCG32 stream
            // fills the 32-byte ChaCha seed four bytes at a time.
            const MUL: u64 = 6364136223846793005;
            const INC: u64 = 11634580027462260723;
            let mut pcg32 = || {
                state = state.wrapping_mul(MUL).wrapping_add(INC);
                let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
                let rot = (state >> 59) as u32;
                xorshifted.rotate_right(rot)
            };
            let mut key = [0u32; 8];
            for word in key.iter_mut() {
                // Bytes are written little-endian and re-read
                // little-endian into state words, so the PCG output maps
                // straight through.
                *word = pcg32();
            }
            StdRng {
                key,
                counter: 0,
                buf: [0; BUF_WORDS],
                index: BUF_WORDS, // force a refill on first use
            }
        }
    }

    impl StdRng {
        /// All-zero key, for pinning the raw cipher against published
        /// ChaCha12 test vectors.
        #[cfg(test)]
        pub(crate) fn zero_keyed_for_tests() -> Self {
            StdRng {
                key: [0; 8],
                counter: 0,
                buf: [0; BUF_WORDS],
                index: BUF_WORDS,
            }
        }

        /// One ChaCha12 block for the current key at block counter `ctr`,
        /// appended to `out`.
        fn block(&self, ctr: u64, out: &mut [u32]) {
            const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
            let mut x = [0u32; 16];
            x[..4].copy_from_slice(&CONSTANTS);
            x[4..12].copy_from_slice(&self.key);
            x[12] = ctr as u32;
            x[13] = (ctr >> 32) as u32;
            // x[14], x[15]: zero nonce (StdRng never sets a stream).
            let input = x;

            #[inline(always)]
            fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
                x[a] = x[a].wrapping_add(x[b]);
                x[d] = (x[d] ^ x[a]).rotate_left(16);
                x[c] = x[c].wrapping_add(x[d]);
                x[b] = (x[b] ^ x[c]).rotate_left(12);
                x[a] = x[a].wrapping_add(x[b]);
                x[d] = (x[d] ^ x[a]).rotate_left(8);
                x[c] = x[c].wrapping_add(x[d]);
                x[b] = (x[b] ^ x[c]).rotate_left(7);
            }

            for _ in 0..6 {
                // 6 double rounds = 12 rounds
                quarter(&mut x, 0, 4, 8, 12);
                quarter(&mut x, 1, 5, 9, 13);
                quarter(&mut x, 2, 6, 10, 14);
                quarter(&mut x, 3, 7, 11, 15);
                quarter(&mut x, 0, 5, 10, 15);
                quarter(&mut x, 1, 6, 11, 12);
                quarter(&mut x, 2, 7, 8, 13);
                quarter(&mut x, 3, 4, 9, 14);
            }
            for (o, (w, i)) in out.iter_mut().zip(x.iter().zip(input.iter())) {
                *o = w.wrapping_add(*i);
            }
        }

        /// Refill the four-block buffer and set the read index, exactly
        /// `BlockRng::generate_and_set`.
        fn generate_and_set(&mut self, index: usize) {
            for blk in 0..4 {
                let ctr = self.counter.wrapping_add(blk as u64);
                let mut out = [0u32; 16];
                self.block(ctr, &mut out);
                self.buf[blk * 16..(blk + 1) * 16].copy_from_slice(&out);
            }
            self.counter = self.counter.wrapping_add(4);
            self.index = index;
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= BUF_WORDS {
                self.generate_and_set(0);
            }
            let value = self.buf[self.index];
            self.index += 1;
            value
        }

        // rand_core's BlockRng reads two consecutive buffered words
        // (little-endian), spilling across a refill when only one word
        // remains; reproduced exactly so mixed u32/u64 draws stay
        // aligned with upstream.
        fn next_u64(&mut self) -> u64 {
            let index = self.index;
            if index < BUF_WORDS - 1 {
                self.index += 2;
                u64::from(self.buf[index + 1]) << 32 | u64::from(self.buf[index])
            } else if index >= BUF_WORDS {
                self.generate_and_set(2);
                u64::from(self.buf[1]) << 32 | u64::from(self.buf[0])
            } else {
                let lo = u64::from(self.buf[BUF_WORDS - 1]);
                self.generate_and_set(1);
                u64::from(self.buf[0]) << 32 | lo
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    /// First ChaCha12 block for the all-zero key: keystream bytes
    /// `9b f4 9a 6a 07 55 f9 53 ...` read as little-endian u32s, which
    /// is what `next_u32` yields upstream. Pins the core cipher
    /// (rounds, constants, counter placement) to the published stream.
    #[test]
    fn chacha12_zero_seed_matches_upstream_vector() {
        let expected = [
            0x6a9a_f49b,
            0x53f9_5507,
            0x12ce_1f81,
            0xd583_265f,
            0xbbc3_2904,
            0x1474_e049,
            0xa589_007e,
            0x5f15_ae2e,
            0x79f8_6405,
            0xc0e3_7ad2,
            0x3428_e82c,
            0x798c_faac,
            0x2c9f_623a,
            0x1969_dea0,
            0x2fe8_0b61,
            0xbe26_1341,
        ];
        let mut rng = StdRng::zero_keyed_for_tests();
        let got: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn float_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn uniform_moments_plausible() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn u64_spills_across_block_boundary() {
        // Draw 63 u32s, then a u64 that must stitch the last word of
        // one refill (low half) to the first word of the next (high
        // half) — the `index == len - 1` branch of BlockRng::next_u64.
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..63 {
            a.next_u32();
            b.next_u32();
        }
        let spilled = a.next_u64();
        let w63 = b.next_u32(); // last word of the first refill
        let w64 = b.next_u32(); // first word of the second refill
        assert_eq!(spilled, u64::from(w64) << 32 | u64::from(w63));
    }
}
