//! A didactic walkthrough of radix top-K — the paper's Fig. 1 example:
//! find the top K = 4 of N = 9 four-bit elements using 2-bit digits,
//! printing the histogram, prefix sum, target digit, and filtering
//! decision of every iteration.
//!
//! ```sh
//! cargo run --example radix_walkthrough
//! ```

fn main() {
    // Fig. 1's setup: nine 4-bit elements, 2-bit digits, K = 4.
    let elements: [u32; 9] = [
        0b0111, 0b0010, 0b1110, 0b0100, 0b1011, 0b0110, 0b0001, 0b1010, 0b0101,
    ];
    let bits = 2u32; // digit width
    let total_bits = 4u32;
    let mut k = 4usize;

    println!("input: {:?}", elements.map(|e| format!("{e:04b}")));
    println!("find the K = {k} smallest, {bits}-bit digits\n");

    let digit = |e: u32, pass: u32| -> usize {
        ((e >> (total_bits - (pass + 1) * bits)) & ((1 << bits) - 1)) as usize
    };

    let mut candidates: Vec<u32> = elements.to_vec();
    let mut results: Vec<u32> = Vec::new();

    for pass in 0..total_bits / bits {
        println!(
            "--- iteration {} (digit bits {}..{}) ---",
            pass + 1,
            pass * bits,
            (pass + 1) * bits
        );
        println!(
            "candidates: {:?}",
            candidates
                .iter()
                .map(|e| format!("{e:04b}"))
                .collect::<Vec<_>>()
        );

        // Step 1: histogram of this pass's digit.
        let mut hist = [0usize; 4];
        for &e in &candidates {
            hist[digit(e, pass)] += 1;
        }
        println!("histogram:  {hist:?}");

        // Step 2: inclusive prefix sum.
        let mut psum = hist;
        for d in 1..4 {
            psum[d] += psum[d - 1];
        }
        println!("prefix sum: {psum:?}");

        // Step 3: target digit — first d with psum[d] >= k.
        let target = (0..4).find(|&d| psum[d] >= k).unwrap();
        println!(
            "target digit: {target:02b} (psum {} >= K {k})",
            psum[target]
        );

        // Step 4: filter.
        let mut next = Vec::new();
        for &e in &candidates {
            let d = digit(e, pass);
            if d < target {
                println!("  {e:04b} -> result (digit {d:02b} < target)");
                results.push(e);
            } else if d == target {
                println!("  {e:04b} -> candidate for next iteration");
                next.push(e);
            } else {
                println!("  {e:04b} -> discarded (digit {d:02b} > target)");
            }
        }
        k -= if target > 0 { psum[target - 1] } else { 0 };
        candidates = next;
        println!("updated: K = {k}, N = {}\n", candidates.len());

        if k == candidates.len() {
            println!("early stop (§3.3): all remaining candidates are results");
            results.extend(&candidates);
            candidates.clear();
            break;
        }
    }
    // Whatever remains after the last digit are ties for the Kth spot.
    results.extend(candidates.iter().take(k));

    results.sort_unstable();
    println!(
        "top-4 results: {:?}",
        results
            .iter()
            .map(|e| format!("{e:04b}"))
            .collect::<Vec<_>>()
    );
    assert_eq!(results, vec![0b0001, 0b0010, 0b0100, 0b0101]);
    println!("matches Fig. 1 ✓");
}
