//! Deep Gradient Compression (the paper's §1 motivation): select the
//! top 0.1% of gradient entries *by magnitude* from millions of
//! values, so only those are communicated between training workers.
//!
//! The library selects the K *smallest* values (the paper's
//! convention), so "largest magnitude" becomes top-K over `-|g|` —
//! a pattern worth showing because every real deployment needs it.
//!
//! ```sh
//! cargo run --release --example gradient_compression
//! ```

use gpu_topk::prelude::*;

fn main() {
    let n = 8 << 20; // 8M gradient entries (a mid-sized layer group)
    let k = n / 1000; // DGC keeps the top 0.1%

    // Gradients look normal-ish around zero.
    let grads = datagen::generate(Distribution::Normal, n, 2024);

    // Negated magnitudes: the K smallest of -|g| are the K largest |g|.
    let keyed: Vec<f32> = grads.iter().map(|g| -g.abs()).collect();

    let mut gpu = Gpu::new(DeviceSpec::a100());
    let input = gpu.htod("neg_magnitudes", &keyed);
    gpu.reset_profile();

    let air = AirTopK::default();
    let out = air.select(&mut gpu, &input, k);
    let t_select = gpu.elapsed_us();
    verify_topk(&keyed, k, &out.values.to_vec(), &out.indices.to_vec()).unwrap();

    let indices = out.indices.to_vec();
    let threshold = out
        .values
        .to_vec()
        .iter()
        .cloned()
        .fold(f32::NEG_INFINITY, f32::max); // largest of the selected -|g|

    // What fraction of the total gradient "energy" do the kept entries
    // carry? (The argument for why DGC works.)
    let total: f64 = grads.iter().map(|g| (g.abs() as f64).powi(2)).sum();
    let kept: f64 = indices
        .iter()
        .map(|&i| (grads[i as usize].abs() as f64).powi(2))
        .sum();

    println!("deep gradient compression with {}:", air.name());
    println!("  gradients:        {n}");
    println!("  kept (top 0.1%):  {k}");
    println!("  |g| threshold:    {:.4}", -threshold);
    println!("  energy kept:      {:.1}%", 100.0 * kept / total);
    println!("  selection time:   {:.1} simulated us", t_select);
    println!(
        "  bytes exchanged:  {} (vs {} uncompressed, {:.0}x reduction)",
        k * 8,
        n * 4,
        (n * 4) as f64 / (k * 8) as f64
    );

    // Sanity: every kept gradient is at least as large as every
    // dropped one (up to ties at the threshold).
    let kept_set: std::collections::HashSet<u32> = indices.iter().copied().collect();
    let min_kept = indices
        .iter()
        .map(|&i| grads[i as usize].abs())
        .fold(f32::INFINITY, f32::min);
    let max_dropped = grads
        .iter()
        .enumerate()
        .filter(|(i, _)| !kept_set.contains(&(*i as u32)))
        .map(|(_, g)| g.abs())
        .fold(0.0f32, f32::max);
    assert!(min_kept >= max_dropped);
    println!(
        "  invariant holds: min kept |g| ({min_kept:.4}) >= max dropped |g| ({max_dropped:.4})"
    );

    // DGC implementations often only need the *threshold* — each worker
    // then filters its own gradients locally. `kth_value` returns just
    // that: one extra reduce kernel, a 4-byte copy back.
    let mut gpu = Gpu::new(DeviceSpec::a100());
    let input = gpu.htod("neg_magnitudes", &keyed);
    gpu.reset_profile();
    let thr = air.kth_value(&mut gpu, &input, k).unwrap();
    println!(
        "\n  threshold-only API: |g| >= {:.4} in {:.1} simulated us",
        -thr,
        gpu.elapsed_us()
    );
    assert_eq!(thr.to_bits(), threshold.to_bits());
}
