//! CPU vs GPU top-K — the paper's §1 framing, made concrete.
//!
//! "Heap is the typical data structure used for this purpose in a
//! sequential algorithm, however, heap operations are difficult to
//! parallelize." This example runs the sequential heap and the
//! chunk-parallel CPU selector for real (host wall-clock) next to the
//! GPU algorithms on the simulator (simulated device time) — two
//! different clocks, labelled as such; the point is the *structure* of
//! the comparison, not a single number.
//!
//! ```sh
//! cargo run --release --example cpu_vs_gpu
//! ```

use gpu_topk::prelude::*;
use std::time::Instant;

fn main() {
    let n = 1 << 22;
    let k = 1000;
    let data = datagen::generate(Distribution::Uniform, n, 99);
    println!("top-{k} of N = 2^22 uniform floats\n");

    // --- CPU, measured on the actual host clock -------------------
    let t = Instant::now();
    let (hv, hi) = heap_topk(&data, k);
    let t_heap = t.elapsed().as_secs_f64() * 1e6;
    verify_topk(&data, k, &hv, &hi).unwrap();

    let t = Instant::now();
    let (pv, pi) = parallel_topk(&data, k, 0);
    let t_par = t.elapsed().as_secs_f64() * 1e6;
    verify_topk(&data, k, &pv, &pi).unwrap();

    println!("host CPU (wall-clock):");
    println!("  sequential heap      {t_heap:>10.0} us");
    println!(
        "  parallel chunks      {t_par:>10.0} us  ({} threads)",
        std::thread::available_parallelism()
            .map(|x| x.get())
            .unwrap_or(1)
    );

    // --- GPU, on the simulated A100 --------------------------------
    println!("\nsimulated A100 (cost-model time):");
    for alg in [
        Box::new(AirTopK::default()) as Box<dyn TopKAlgorithm>,
        Box::new(GridSelect::default()),
    ] {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        let input = gpu.htod("scores", &data);
        gpu.reset_profile();
        let out = alg.select(&mut gpu, &input, k);
        verify_topk(&data, k, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
        println!("  {:<20} {:>10.1} us", alg.name(), gpu.elapsed_us());
    }

    println!(
        "\nThe 16 MiB input alone takes ~{:.0} us to read once at the A100's\n\
         1.55 TB/s — the GPU numbers sit near that roofline, which is the\n\
         paper's whole premise for building top-K on GPUs (§1).",
        (n * 4) as f64 / 1_430_600.0
    );
}
