//! On-the-fly selection fused into distance computation — the §4
//! capability unique to the WarpSelect family: "it can serve as a
//! device function within other kernels, and it can process data
//! on-the-fly".
//!
//! Two pipelines answer the same ANN query over a SIFT-like database:
//!
//! 1. **Materialise-then-select** — a distance kernel writes the full
//!    N-length distance array to device memory, then a second pass
//!    selects the top K.
//! 2. **Fused** — [`GridSelect::select_on_the_fly`] computes each
//!    distance inside the selection kernel itself; the distance array
//!    never exists.
//!
//! The fused path saves a kernel launch plus 2·N·4 bytes of
//! device-memory traffic (the array write + read-back), which the
//! simulator's meters make visible.
//!
//! ```sh
//! cargo run --release --example fused_ann
//! ```

use gpu_topk::prelude::*;

fn main() {
    let n = 1 << 16;
    let k = 10;
    let ds = AnnDataset::generate(AnnKind::SiftLike, n, 1, 21);
    let dim = ds.dim;
    let reference = ds.distance_array(0);
    let query: Vec<f32> = ds.query(0).to_vec();

    // ---------- pipeline 1: materialise then select ----------------
    let mut gpu = Gpu::new(DeviceSpec::a100());
    let vecs = gpu.htod("vectors", &ds.vectors);
    let q = gpu.htod("query", &query);
    let dists = gpu.alloc::<f32>("distances", n);
    gpu.reset_profile();
    {
        let (vecs, q, dists) = (vecs.clone(), q.clone(), dists.clone());
        let chunk = 256 * 4;
        let contract = KernelContract::new("distance_kernel")
            .reads(&vecs, Footprint::per_block(chunk * dim))
            .reads(&q, Footprint::fixed(0, dim))
            .writes(&dists, Footprint::per_block(chunk));
        gpu.launch_checked(
            &contract,
            gpu_sim::LaunchConfig::for_elements(n, 256, 4, usize::MAX),
            move |ctx| {
                let start = ctx.block_idx * chunk;
                let end = (start + chunk).min(n);
                let mut qreg = vec![0.0f32; dim];
                for (d, slot) in qreg.iter_mut().enumerate() {
                    *slot = ctx.ld(&q, d);
                }
                for v in start..end {
                    let mut acc = 0.0f32;
                    for (d, qd) in qreg.iter().enumerate() {
                        let x = ctx.ld(&vecs, v * dim + d);
                        acc += (x - qd) * (x - qd);
                    }
                    ctx.ops(2 * dim as u64);
                    ctx.st(&dists, v, acc);
                }
            },
        );
    }
    let out = GridSelect::default().select(&mut gpu, &dists, k);
    let t_two_phase = gpu.elapsed_us();
    let traffic_two_phase: u64 = gpu
        .reports()
        .iter()
        .map(|r| r.stats.total_mem_bytes())
        .sum();
    let launches_two_phase = gpu.timeline().kernel_count();
    verify_topk(&reference, k, &out.values.to_vec(), &out.indices.to_vec()).unwrap();

    // ---------- pipeline 2: fused -----------------------------------
    let mut gpu = Gpu::new(DeviceSpec::a100());
    let vecs = gpu.htod("vectors", &ds.vectors);
    let q = gpu.htod("query", &query);
    gpu.reset_profile();
    // Heavy producer (128 multiply-adds per element): size the grid
    // like the standalone distance kernel, not like a streaming read.
    let fused_cfg = GridSelect::new(GridSelectConfig {
        items_per_thread: 4,
        ..GridSelectConfig::default()
    });
    let out = fused_cfg
        .select_on_the_fly(
            &mut gpu,
            n,
            k,
            |ctx, v| {
                let mut acc = 0.0f32;
                for d in 0..dim {
                    let x = ctx.ld(&vecs, v * dim + d);
                    // The query vector lives in the constant cache / registers
                    // on a real GPU (one broadcast load per block, not per
                    // element): read it unmetered.
                    let qd = q.get(d);
                    acc += (x - qd) * (x - qd);
                }
                ctx.ops(2 * dim as u64);
                acc
            },
            // The fused producer gathers from the vector database —
            // declared so the launch contract covers its reads.
            |c| c.reads(&vecs, Footprint::all()),
        )
        .unwrap();
    let t_fused = gpu.elapsed_us();
    let traffic_fused: u64 = gpu
        .reports()
        .iter()
        .map(|r| r.stats.total_mem_bytes())
        .sum();
    let launches_fused = gpu.timeline().kernel_count();
    verify_topk(&reference, k, &out.values.to_vec(), &out.indices.to_vec()).unwrap();

    println!("ANN query over {n} SIFT-like {dim}-d vectors, K = {k}\n");
    println!(
        "{:<28} {:>10} {:>9} {:>16}",
        "pipeline", "time us", "kernels", "device traffic"
    );
    println!(
        "{:<28} {:>10.1} {:>9} {:>13} KiB",
        "materialise + GridSelect",
        t_two_phase,
        launches_two_phase,
        traffic_two_phase / 1024
    );
    println!(
        "{:<28} {:>10.1} {:>9} {:>13} KiB",
        "fused select_on_the_fly",
        t_fused,
        launches_fused,
        traffic_fused / 1024
    );
    println!(
        "\nfused avoids materialising the {} KiB distance array (write + read\nback = {} KiB of traffic saved) — §4's on-the-fly advantage as a\nproduction API.",
        n * 4 / 1024,
        2 * n * 4 / 1024,
    );
    assert!(t_fused < t_two_phase);
}
