//! Approximate-nearest-neighbour search (the paper's §5.5 scenario):
//! top-K over L2 distance arrays from a DEEP1B-like vector database.
//!
//! A vector database answers "which 10 stored vectors are closest to
//! this query?" by computing query→candidate distances and running
//! top-K on the distance array. This example builds a 96-dimensional
//! database (DEEP1B's dimensionality), runs a batch of queries through
//! three algorithms, and checks they return the same neighbours.
//!
//! ```sh
//! cargo run --release --example ann_search
//! ```

use gpu_topk::prelude::*;

fn main() {
    let n = 1 << 16; // candidate vectors (ANN shortlists are subsets, §5.5)
    let queries = 8;
    let k = 10; // typical ANN-Benchmarks K

    println!("building DEEP1B-like database: {n} x 96-d vectors, {queries} queries");
    let ds = AnnDataset::generate(AnnKind::Deep1bLike, n, queries, 7);

    let algorithms: Vec<Box<dyn TopKAlgorithm>> = vec![
        Box::new(AirTopK::default()),
        Box::new(GridSelect::default()),
        Box::new(SortTopK),
    ];

    println!(
        "\n{:<12} {:>14} {:>12}   nearest neighbour (query 0)",
        "algorithm", "batch time us", "per query us"
    );
    let mut reference_best: Option<u32> = None;
    for alg in &algorithms {
        let mut gpu = Gpu::new(DeviceSpec::a100());
        // Distance computation would itself be a GPU kernel in a real
        // ANN engine; here we precompute on the host and upload.
        let dists: Vec<Vec<f32>> = (0..queries).map(|q| ds.distance_array(q)).collect();
        let inputs: Vec<_> = dists
            .iter()
            .enumerate()
            .map(|(q, d)| gpu.htod(&format!("query{q}"), d))
            .collect();
        gpu.reset_profile();
        let outs = alg.select_batch(&mut gpu, &inputs, k);
        let t = gpu.elapsed_us();

        // Verify and pull out query 0's nearest neighbour.
        for (d, o) in dists.iter().zip(&outs) {
            verify_topk(d, k, &o.values.to_vec(), &o.indices.to_vec())
                .unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
        }
        let vals = outs[0].values.to_vec();
        let idxs = outs[0].indices.to_vec();
        let best = (0..k).min_by(|&a, &b| vals[a].total_cmp(&vals[b])).unwrap();
        match reference_best {
            None => reference_best = Some(idxs[best]),
            Some(r) => assert_eq!(
                r, idxs[best],
                "all algorithms must agree on the nearest neighbour"
            ),
        }
        println!(
            "{:<12} {:>14.1} {:>12.1}   vector #{} at distance {:.4}",
            alg.name(),
            t,
            t / queries as f64,
            idxs[best],
            vals[best]
        );
    }
    println!("\nall algorithms agree on the nearest neighbour ✓");
}
