//! Quickstart: find the K smallest values (with indices) on a
//! simulated A100, and inspect what the run cost.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gpu_topk::prelude::*;

fn main() {
    // A simulated NVIDIA A100 — the paper's main testbed.
    let mut gpu = Gpu::new(DeviceSpec::a100());

    // One million uniform scores; we want the 100 smallest.
    let n = 1 << 20;
    let k = 100;
    let data = datagen::generate(Distribution::Uniform, n, 42);
    let input = gpu.htod("scores", &data);

    // Time only the selection, not the upload.
    gpu.reset_profile();
    let air = AirTopK::default();
    let out = air.select(&mut gpu, &input, k);

    let mut values = out.values.to_vec();
    let indices = out.indices.to_vec();
    verify_topk(&data, k, &values, &indices).expect("top-K output is correct");

    values.sort_by(f32::total_cmp);
    println!("top-{k} of {n} elements with {}:", air.name());
    println!("  smallest three: {:?}", &values[..3]);
    println!("  simulated time: {:.1} us", gpu.elapsed_us());
    println!(
        "  kernel launches: {} | PCIe traffic: {:.1} us | device idle: {:.1} us",
        gpu.timeline().kernel_count(),
        gpu.timeline().memcpy_us(),
        gpu.timeline().idle_us()
    );

    // The same problem with GridSelect, which can also process data
    // on-the-fly (§4) and wins for small K.
    let mut gpu = Gpu::new(DeviceSpec::a100());
    let input = gpu.htod("scores", &data);
    gpu.reset_profile();
    let gs = GridSelect::default();
    let out = gs.select(&mut gpu, &input, k);
    verify_topk(&data, k, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
    println!(
        "\n{} solves the same problem in {:.1} us (K = {k} is small: partial sorting wins)",
        gs.name(),
        gpu.elapsed_us()
    );
}
