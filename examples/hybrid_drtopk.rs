//! Dr. Top-K-style delegate-centric hybrid selection (§2.2's related
//! work, built as an orthogonal layer over any base algorithm).
//!
//! The hybrid reduces the base algorithm's workload from N to
//! `N/L + K·L`: a delegate (per-subrange minimum) pass, a top-K over
//! the delegates, a gather of the winning subranges, and a second
//! top-K over the gathered candidates. The paper notes that hybrid
//! methods "benefit from a high-performance parallel top-K algorithm"
//! — which this example quantifies by running the hybrid over a slow
//! base (full Sort) and a fast one (AIR Top-K).
//!
//! ```sh
//! cargo run --release --example hybrid_drtopk
//! ```

use gpu_topk::prelude::*;

fn time_one(alg: &dyn TopKAlgorithm, data: &[f32], k: usize) -> f64 {
    let mut gpu = Gpu::new(DeviceSpec::a100());
    let input = gpu.htod("scores", data);
    gpu.reset_profile();
    let out = alg.select(&mut gpu, &input, k);
    verify_topk(data, k, &out.values.to_vec(), &out.indices.to_vec())
        .unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
    gpu.elapsed_us()
}

fn main() {
    let n = 1 << 21;
    let k = 64;
    let data = datagen::generate(Distribution::Uniform, n, 77);
    println!("N = 2^21, K = {k}, uniform\n");
    println!("{:<34} {:>12}", "algorithm", "time us");

    let sort_base = time_one(&SortTopK, &data, k);
    println!("{:<34} {:>12.1}", "Sort (base alone)", sort_base);

    let hybrid_sort = DrTopK::new(SortTopK);
    let t = time_one(&hybrid_sort, &data, k);
    println!(
        "{:<34} {:>12.1}   ({:.1}x over its base)",
        "Dr. Top-K over Sort",
        t,
        sort_base / t
    );

    let air_base = time_one(&AirTopK::default(), &data, k);
    println!("{:<34} {:>12.1}", "AIR Top-K (base alone)", air_base);

    let hybrid_air = DrTopK::new(AirTopK::default());
    let t_air = time_one(&hybrid_air, &data, k);
    println!(
        "{:<34} {:>12.1}   ({:.2}x vs its base)",
        "Dr. Top-K over AIR Top-K",
        t_air,
        air_base / t_air
    );

    let l = hybrid_air.sub_len_for(n, k);
    println!(
        "\nsubrange length L = {l}: the base algorithm sees {} + {} elements\n\
         instead of {n}. A slow base gains enormously; a fast base gains\n\
         little or loses — exactly why the paper calls the hybrid layer\n\
         orthogonal: it 'benefits from a high-performance parallel top-K\n\
         algorithm' rather than replacing one.",
        n.div_ceil(l),
        k * l
    );
}
