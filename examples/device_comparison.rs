//! Run the same selection on simulated A100, H100 and A10 devices —
//! the paper's §5.4 / Fig. 12 experiment in miniature. Because AIR
//! Top-K is memory-bound (§5.2.1), the runtimes should scale with the
//! devices' memory bandwidths (0.6 / 1.55 / 3.35 TB/s).
//!
//! ```sh
//! cargo run --release --example device_comparison
//! ```

use gpu_topk::prelude::*;

fn main() {
    let n = 1 << 22;
    let k = 2048;
    let data = datagen::generate(Distribution::Uniform, n, 11);
    let devices = [DeviceSpec::a10(), DeviceSpec::a100(), DeviceSpec::h100()];

    println!("AIR Top-K, N = 2^22, K = {k}, uniform data\n");
    println!(
        "{:<6} {:>10} {:>12} {:>16}",
        "GPU", "BW TB/s", "time us", "vs A10"
    );

    let mut t_a10 = None;
    for dev in devices {
        let bw = dev.mem_bw_gbps / 1000.0;
        let mut gpu = Gpu::new(dev);
        let input = gpu.htod("in", &data);
        gpu.reset_profile();
        let out = AirTopK::default().select(&mut gpu, &input, k);
        verify_topk(&data, k, &out.values.to_vec(), &out.indices.to_vec()).unwrap();
        let t = gpu.elapsed_us();
        if t_a10.is_none() {
            t_a10 = Some(t);
        }
        println!(
            "{:<6} {:>10.2} {:>12.1} {:>15.2}x",
            gpu.spec().name,
            bw,
            t,
            t_a10.unwrap() / t
        );
    }

    println!(
        "\n§5.4's observation: speedups roughly track memory bandwidth,\n\
         because AIR Top-K is memory-bound (Table 3)."
    );
}
